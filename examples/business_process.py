"""A data-centric business process checked against catalogue policies.

Section 1 motivates database-driven systems with data-centric business
processes: a workflow reads a (fixed) catalogue database and moves through
control states.  Here an order-processing workflow picks an offered product,
adds a required accessory, checks compatibility and ships.

Static verification questions answered below:

1. Can the workflow ever ship at all?  (Emptiness over all catalogues.)
2. Can it ship under a *policy* given as a HOM template -- e.g. a policy
   whose catalogue shape forbids offered products from requiring anything
   compatible?  (Emptiness over HOM(H), Theorem 4.)

Run with::

    python examples/business_process.py
"""

from repro import AllDatabasesTheory, EmptinessSolver, HomTheory
from repro.library import order_workflow_system
from repro.logic.structures import Structure


def permissive_policy_template(schema):
    """A policy template that allows everything (one node with all facts)."""
    return Structure(
        schema,
        ["anything"],
        relations={
            "offered": {("anything",)},
            "requires": {("anything", "anything")},
            "conflict": set(),
        },
    )


def conflicting_policy_template(schema):
    """A policy in which every required accessory conflicts with its product.

    Catalogues that map homomorphically into this template can offer products
    and declare requirements, but any required accessory is always in
    conflict with the product -- so the workflow can never pass its
    compatibility check.
    """
    return Structure(
        schema,
        ["product", "accessory"],
        relations={
            "offered": {("product",)},
            "requires": {("product", "accessory")},
            "conflict": {("product", "accessory"), ("accessory", "product")},
        },
    )


def main() -> None:
    system = order_workflow_system()
    print("Order-processing workflow:")
    print(system.describe())
    print()

    solver = EmptinessSolver(AllDatabasesTheory(system.schema))
    result = solver.check(system)
    print(f"Over all catalogues: {'can ship' if result.nonempty else 'can never ship'}")
    print("A smallest catalogue that lets the workflow ship:")
    print(result.run.database.describe())
    print("Shipping run:", result.run)
    print()

    permissive = EmptinessSolver(HomTheory(permissive_policy_template(system.schema))).check(system)
    print(
        "Under the permissive policy template: "
        f"{'can ship' if permissive.nonempty else 'can never ship'} (expected: can ship)"
    )

    conflicting = EmptinessSolver(HomTheory(conflicting_policy_template(system.schema))).check(system)
    print(
        "Under the conflicting policy template: "
        f"{'can ship' if conflicting.nonempty else 'can never ship'} (expected: can never ship)"
    )
    stats = conflicting.statistics
    print(
        f"(The negative answer explored {stats.configurations_explored} abstract "
        f"configurations -- no catalogue enumeration was needed.)"
    )


if __name__ == "__main__":
    main()
