"""Tests for Fraïssé-class machinery: amalgamation instances and solutions."""

import pytest

from repro.errors import TheoryError
from repro.fraisse.amalgamation import (
    AmalgamationInstance,
    find_amalgamation_solution,
    free_amalgam,
    has_joint_embedding,
    union_of_consistent,
    verify_solution,
)
from repro.fraisse.base import generic_abstraction_key, set_partitions
from repro.logic.morphisms import find_homomorphism
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.relational.csp import clique_template

GRAPH = Schema.relational(E=2)


def edgeless(n):
    return Structure(GRAPH, list(range(n)))


def edge(a, b, extra=()):
    nodes = {a, b} | set(extra)
    return Structure(GRAPH, nodes, relations={"E": {(a, b)}})


def test_inclusion_instance_and_free_amalgam_basics():
    shared = edgeless(1)  # the single node 0
    left = edge(0, 1)
    right = edge(0, 2)
    instance = AmalgamationInstance.inclusion(shared, left, right)
    solution = free_amalgam(instance)
    assert verify_solution(instance, solution)
    amalgam = solution.amalgam
    assert amalgam.size == 3
    # Both edges survive; no cross edge between the two non-shared parts.
    assert len(amalgam.relation("E")) == 2


def test_make_rejects_non_embeddings():
    shared = edge(0, 1)
    left = edgeless(2)
    with pytest.raises(TheoryError):
        AmalgamationInstance.make(shared, left, left, {0: 0, 1: 1}, {0: 0, 1: 1})


def test_free_amalgam_requires_relational_schema():
    schema = Schema(relations={}, functions={"f": 1})
    shared = Structure(schema, [0], functions={"f": {(0,): 0}})
    instance = AmalgamationInstance.inclusion(shared, shared, shared)
    with pytest.raises(TheoryError):
        free_amalgam(instance)


def test_union_of_consistent_structures():
    left = edge(0, 1)
    right = edge(1, 2)
    union = union_of_consistent(left, right)
    assert union.size == 3
    assert union.holds("E", 0, 1) and union.holds("E", 1, 2)
    inconsistent_left = Structure(GRAPH, [0, 1], relations={"E": {(0, 1), (1, 0)}})
    inconsistent_right = Structure(GRAPH, [0, 1, 2], relations={"E": {(1, 2)}})
    with pytest.raises(TheoryError):
        union_of_consistent(inconsistent_left, inconsistent_right)


def test_forests_not_closed_under_amalgamation_example3():
    """Example 3: the class of forests is not closed under amalgamation."""

    def is_forest(structure: Structure) -> bool:
        # A directed forest: every node has at most one parent and no cycles.
        parents = {}
        for a, b in structure.relation("E"):
            if b in parents:
                return False
            parents[b] = a
        # cycle check
        for start in structure.domain:
            seen = set()
            node = start
            while node in parents:
                node = parents[node]
                if node in seen or node == start:
                    return False
                seen.add(node)
        return True

    # Shared part: three isolated nodes x, y, v.  The left side routes x to v
    # through a fresh node a, the right side routes y to v through a fresh
    # node b.  In any amalgam either v keeps two distinct parents (a and b) or,
    # if a and b are identified, the merged node gets the two distinct shared
    # parents x and y -- never a forest.
    shared = Structure(GRAPH, ["x", "y", "v"])
    left = Structure(
        GRAPH, ["x", "y", "v", "a"], relations={"E": {("x", "a"), ("a", "v")}}
    )
    right = Structure(
        GRAPH, ["x", "y", "v", "b"], relations={"E": {("y", "b"), ("b", "v")}}
    )
    instance = AmalgamationInstance.inclusion(shared, left, right)
    assert is_forest(left) and is_forest(right)
    solution = find_amalgamation_solution(instance, is_forest, extra_tuple_budget=0)
    assert solution is None
    # ... while the class of all graphs of course has the free solution.
    assert find_amalgamation_solution(instance, lambda s: True) is not None


def test_hom_class_closed_under_amalgamation_lemma7():
    """Lemma 7: the (coloured) HOM class admits the free amalgam."""
    template = clique_template(2)

    def in_hom(structure: Structure) -> bool:
        return find_homomorphism(structure, template) is not None

    shared = edgeless(1)
    left = edge(0, 1)
    right = edge(0, 2)
    instance = AmalgamationInstance.inclusion(shared, left, right)
    solution = find_amalgamation_solution(instance, in_hom)
    assert solution is not None
    assert in_hom(solution.amalgam)


def test_linear_orders_need_extra_tuples():
    """Linear orders have no free amalgam but do amalgamate with added tuples."""

    def is_strict_linear_order(structure: Structure) -> bool:
        nodes = list(structure.domain)
        rel = structure.relation("E")
        for a in nodes:
            if (a, a) in rel:
                return False
            for b in nodes:
                if a != b and (((a, b) in rel) == ((b, a) in rel)):
                    return False
                for c in nodes:
                    if (a, b) in rel and (b, c) in rel and (a, c) not in rel:
                        return False
        return True

    shared = edgeless(1)
    left = edge(0, 1)      # 0 < 1
    right = edge(0, 2)     # 0 < 2
    instance = AmalgamationInstance.inclusion(shared, left, right)
    free = free_amalgam(instance)
    assert not is_strict_linear_order(free.amalgam)
    solution = find_amalgamation_solution(
        instance, is_strict_linear_order, extra_tuple_budget=1
    )
    assert solution is not None
    assert is_strict_linear_order(solution.amalgam)


def test_joint_embedding_via_disjoint_union():
    assert has_joint_embedding(edge(0, 1), edge(0, 1), lambda s: True)


# -- generic abstraction key -------------------------------------------------------------------


def test_generic_abstraction_key_identifies_register_isomorphic_configs():
    g1 = Structure(GRAPH, [0, 1, 5], relations={"E": {(0, 1), (1, 5)}})
    g2 = Structure(GRAPH, [3, 7, 9], relations={"E": {(3, 7), (7, 9), (9, 9)}})
    key1 = generic_abstraction_key(g1, {"x": 0, "y": 1})
    key2 = generic_abstraction_key(g2, {"x": 3, "y": 7})
    assert key1 == key2  # the (9,9) loop is outside the generated part
    key3 = generic_abstraction_key(g2, {"x": 7, "y": 3})
    assert key3 != key1  # register assignment matters


def test_generic_abstraction_key_includes_function_closure():
    schema = Schema(relations={}, functions={"f": 1})
    a = Structure(schema, [0, 1, 2], functions={"f": {(0,): 1, (1,): 2, (2,): 2}})
    b = Structure(schema, [0, 1, 2], functions={"f": {(0,): 1, (1,): 1, (2,): 2}})
    assert generic_abstraction_key(a, {"x": 0}) != generic_abstraction_key(b, {"x": 0})


def test_set_partitions_counts():
    assert len(list(set_partitions([1]))) == 1
    assert len(list(set_partitions([1, 2]))) == 2
    assert len(list(set_partitions([1, 2, 3]))) == 5  # Bell number B3
    assert len(list(set_partitions([1, 2, 3, 4]))) == 15  # Bell number B4
    assert list(set_partitions([])) == [[]]
