"""Unit tests for homomorphisms, embeddings and isomorphisms."""

from repro.logic.morphisms import (
    are_isomorphic,
    automorphisms,
    embeds_into,
    find_embedding,
    find_embeddings,
    find_homomorphism,
    find_homomorphisms,
    is_embedding,
    is_homomorphism,
    is_isomorphism,
)
from repro.logic.schema import Schema
from repro.logic.structures import Structure

GRAPH = Schema.relational(E=2)


def path(n):
    return Structure(GRAPH, list(range(n + 1)), relations={"E": {(i, i + 1) for i in range(n)}})


def cycle(n):
    return Structure(GRAPH, list(range(n)), relations={"E": {(i, (i + 1) % n) for i in range(n)}})


def clique(n):
    return Structure(
        GRAPH, list(range(n)), relations={"E": {(a, b) for a in range(n) for b in range(n) if a != b}}
    )


def test_is_homomorphism_checks_edges():
    p = path(2)
    k2 = clique(2)
    assert is_homomorphism({0: 0, 1: 1, 2: 0}, p, k2)
    assert not is_homomorphism({0: 0, 1: 0, 2: 0}, p, k2)


def test_homomorphism_requires_total_map_into_target():
    p = path(1)
    k2 = clique(2)
    assert not is_homomorphism({0: 0}, p, k2)
    assert not is_homomorphism({0: 0, 1: 7}, p, k2)


def test_find_homomorphism_odd_cycle_not_bipartite():
    assert find_homomorphism(cycle(3), clique(2)) is None
    assert find_homomorphism(cycle(4), clique(2)) is not None
    assert find_homomorphism(cycle(3), clique(3)) is not None


def test_homomorphism_count_on_small_instance():
    # Hom(path with one edge -> K2): 2 orientations.
    homs = list(find_homomorphisms(path(1), clique(2)))
    assert len(homs) == 2


def test_injective_homomorphisms():
    homs = list(find_homomorphisms(path(1), clique(3), injective=True))
    assert len(homs) == 6
    assert all(len(set(h.values())) == 2 for h in homs)


def test_partial_assignment_respected():
    homs = list(find_homomorphisms(path(1), clique(2), partial={0: 1}))
    assert all(h[0] == 1 for h in homs)
    assert len(homs) == 1


def test_embedding_reflects_edges():
    # A one-edge path does NOT embed into a clique: the clique's reverse edge
    # (1, 0) would have to be reflected, so the image is not an induced copy.
    p = path(1)
    k3 = clique(3)
    assert find_embedding(p, k3) is None
    assert find_homomorphism(p, k3) is not None
    # It does embed into a longer path (an induced copy exists there).
    target = path(4)
    embedding = find_embedding(p, target)
    assert embedding is not None
    assert is_embedding(embedding, p, target)


def test_path_embeds_into_longer_path_but_not_conversely():
    assert embeds_into(path(1), path(3))
    assert not embeds_into(path(3), path(1))


def test_cycle_does_not_embed_into_path():
    assert not embeds_into(cycle(3), path(5))


def test_isomorphism_detection():
    c = cycle(4)
    renamed = c.rename({0: "a", 1: "b", 2: "c", 3: "d"})
    assert are_isomorphic(c, renamed)
    assert not are_isomorphic(cycle(3), cycle(4))
    assert not are_isomorphic(cycle(4), path(3))


def test_is_isomorphism_explicit_map():
    c = cycle(3)
    rotated = {0: 1, 1: 2, 2: 0}
    assert is_isomorphism(rotated, c, c)
    assert not is_isomorphism({0: 0, 1: 1, 2: 1}, c, c)


def test_automorphisms_of_directed_cycle():
    autos = list(automorphisms(cycle(3)))
    assert len(autos) == 3  # the three rotations of a directed triangle


def test_embedding_with_functions():
    schema = Schema(relations={}, functions={"f": 1})
    a = Structure(schema, [0, 1], functions={"f": {(0,): 1, (1,): 1}})
    b = Structure(
        schema, [0, 1, 2], functions={"f": {(0,): 1, (1,): 1, (2,): 0}}
    )
    embedding = find_embedding(a, b)
    assert embedding is not None
    assert is_embedding(embedding, a, b)
