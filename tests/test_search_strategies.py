"""The pluggable search layer: strategy agreement, statistics, cache counters.

The verdict of the emptiness procedure must not depend on the frontier
discipline (soundness comes from witness re-validation, completeness from the
abstraction-key pruning), so BFS, DFS and best-first must agree on every
example system -- this file pins that down for the e1-e3 workloads, plus the
instrumentation the fast-path engine core added: duplicate-key pruning and
abstraction-key cache counters.
"""

import pytest

from repro import AllDatabasesTheory, EmptinessSolver, HomTheory, clique_template
from repro.errors import SolverError
from repro.fraisse.search import (
    STRATEGY_NAMES,
    BestFirstStrategy,
    BreadthFirstStrategy,
    DepthFirstStrategy,
    abstraction_key_score,
    make_strategy,
)
from repro.library import (
    odd_red_cycle_system,
    self_loop_required_system,
    triangle_system,
)
from repro.perf import caches_disabled
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA

EXAMPLE_CASES = [
    pytest.param(
        odd_red_cycle_system,
        lambda: AllDatabasesTheory(COLORED_GRAPH_SCHEMA),
        True,
        id="e1-odd-red-cycle-all",
    ),
    pytest.param(
        triangle_system,
        lambda: HomTheory(clique_template(2)),
        False,
        id="e2-triangle-hom-k2",
    ),
    pytest.param(
        triangle_system,
        lambda: AllDatabasesTheory(GRAPH_SCHEMA),
        True,
        id="e3-triangle-all",
    ),
    pytest.param(
        self_loop_required_system,
        lambda: AllDatabasesTheory(GRAPH_SCHEMA),
        True,
        id="e3-self-loop-all",
    ),
]


@pytest.mark.parametrize("system_builder,theory_builder,expected", EXAMPLE_CASES)
def test_all_strategies_agree_on_example_systems(
    system_builder, theory_builder, expected
):
    system = system_builder()
    for strategy in STRATEGY_NAMES:
        result = EmptinessSolver(theory_builder(), strategy=strategy).check(system)
        assert result.nonempty == expected, f"strategy {strategy} disagrees"
        assert result.exhausted
        assert result.statistics.strategy == strategy
        if expected:
            # Every positive verdict carries a replayable witness regardless
            # of exploration order (the engine re-validates it itself, but
            # assert the artefacts are present).
            assert result.run is not None
            assert result.run is not None


@pytest.mark.parametrize("system_builder,theory_builder,expected", EXAMPLE_CASES)
def test_strategies_agree_with_legacy_cache_free_engine(
    system_builder, theory_builder, expected
):
    """The cached fast path and the legacy path return identical verdicts."""
    system = system_builder()
    with caches_disabled():
        legacy = EmptinessSolver(theory_builder()).check(system)
    assert legacy.nonempty == expected
    fast = EmptinessSolver(theory_builder()).check(system)
    assert fast.nonempty == legacy.nonempty


def test_statistics_and_cache_counters_are_populated():
    system = odd_red_cycle_system()
    result = EmptinessSolver(
        AllDatabasesTheory(COLORED_GRAPH_SCHEMA), strategy="bfs"
    ).check(system)
    stats = result.statistics
    assert stats.candidates_generated > 0
    assert stats.configurations_enqueued > 0
    assert stats.duplicate_keys_pruned > 0
    # Every abstraction key computed registers as a hit or a miss, and
    # revisited candidates reuse the memoised canonical form.
    assert stats.key_cache_misses > 0
    assert stats.key_cache_hits > 0
    payload = stats.as_dict()
    for field in (
        "duplicate_keys_pruned",
        "key_cache_hits",
        "key_cache_misses",
        "strategy",
    ):
        assert field in payload


def test_key_cache_hits_on_repeated_checks():
    """Re-checking the same system reuses memoised abstraction keys."""
    system = triangle_system()
    solver = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA))
    first = solver.check(system)
    second = solver.check(system)
    assert first.nonempty == second.nonempty
    assert second.statistics.key_cache_hits > 0


def test_dfs_explores_at_most_as_many_configurations_on_nonempty():
    """On this workload DFS reaches an accepting state without draining BFS's
    whole frontier (a sanity check that the strategies genuinely differ)."""
    system = odd_red_cycle_system()
    bfs = EmptinessSolver(
        AllDatabasesTheory(COLORED_GRAPH_SCHEMA), strategy="bfs"
    ).check(system)
    dfs = EmptinessSolver(
        AllDatabasesTheory(COLORED_GRAPH_SCHEMA), strategy="dfs"
    ).check(system)
    assert bfs.nonempty and dfs.nonempty
    assert dfs.statistics.configurations_explored > 0
    assert bfs.statistics.configurations_explored > 0


def test_make_strategy_resolves_names_instances_and_factories():
    assert isinstance(make_strategy("bfs"), BreadthFirstStrategy)
    assert isinstance(make_strategy("depth-first"), DepthFirstStrategy)
    assert isinstance(make_strategy("priority"), BestFirstStrategy)
    assert isinstance(make_strategy(DepthFirstStrategy), DepthFirstStrategy)
    ready = BestFirstStrategy()
    assert make_strategy(ready) is ready
    with pytest.raises(SolverError):
        make_strategy("simulated-annealing")


def test_frontier_disciplines():
    bfs = BreadthFirstStrategy()
    dfs = DepthFirstStrategy()
    best = BestFirstStrategy()
    for strategy in (bfs, dfs, best):
        for score, item in ((3, "heavy"), (1, "light"), (2, "medium")):
            strategy.push(item, score)
        assert len(strategy) == 3
    assert bfs.pop() == "heavy"  # FIFO
    assert dfs.pop() == "medium"  # LIFO
    assert best.pop() == "light"  # smallest score first
    bfs.clear()
    assert len(bfs) == 0


def test_abstraction_key_score_orders_by_size():
    small = (("r", "x"),)
    large = (("r", "x"), ("s", "y"), frozenset({("E", "x", "y"), ("E", "y", "x")}))
    assert abstraction_key_score(small) < abstraction_key_score(large)


def test_reused_strategy_instance_starts_with_empty_frontier():
    """A check that hits the configuration cap leaves frontier nodes behind;
    a later check through the same strategy instance must not inherit them."""
    strategy = BreadthFirstStrategy()
    capped = EmptinessSolver(
        AllDatabasesTheory(GRAPH_SCHEMA), max_configurations=2, strategy=strategy
    ).check(self_loop_required_system())
    assert not capped.exhausted
    assert len(strategy) > 0  # stale nodes left by the interrupted search
    fresh = EmptinessSolver(
        AllDatabasesTheory(GRAPH_SCHEMA), strategy=strategy
    ).check(triangle_system())
    assert fresh.nonempty and fresh.exhausted
