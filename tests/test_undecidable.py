"""Tests for the Section 6 undecidability constructions (bounded demonstrations)."""

import pytest

from repro.undecidable import (
    CounterMachine,
    OpKind,
    blocked_machine,
    caterpillar_database,
    counting_machine,
    dec,
    demonstrate_fact15,
    demonstrate_fact16,
    demonstrate_theorem17,
    diverging_machine,
    fact15_system,
    fact16_system,
    halt,
    inc,
    jz,
    pattern_chain_database,
    successor_word_database,
    theorem17_system,
)


def test_counter_machine_interpreter():
    machine = counting_machine(3)
    halted, steps, counters = machine.run(100)
    assert halted
    assert counters == (0, 3)
    assert machine.max_counter_value(100) == 3
    assert not diverging_machine().halts_within(50)
    assert not blocked_machine().halts_within(50)


def test_counter_machine_validation():
    with pytest.raises(ValueError):
        CounterMachine.make({"a": inc(0, "missing")}, "a")
    with pytest.raises(ValueError):
        CounterMachine.make({"a": halt()}, "missing")


def test_machine_builders():
    machine = CounterMachine.make(
        {"a": jz(0, "done", "b"), "b": dec(0, "a"), "done": halt()}, "a"
    )
    halted, _, counters = machine.run(10)
    assert halted and counters == (0, 0)


def test_fact15_encoding_matches_machine_behaviour():
    machine = counting_machine(2)
    # The machine's counters reach 2, so a successor word with at least three
    # positions is needed and then suffices.
    assert not demonstrate_fact15(machine, 2)
    assert demonstrate_fact15(machine, 4)
    # Diverging and blocked machines never accept, at any bound.
    assert not demonstrate_fact15(diverging_machine(), 4)
    assert not demonstrate_fact15(blocked_machine(), 4)


def test_fact15_system_shape():
    system = fact15_system(counting_machine(1))
    assert "boot" in system.states
    assert set(system.registers) == {"c0", "c1", "z"}
    assert all(t.guard.is_quantifier_free() for t in system.transitions)


def test_successor_word_database():
    database = successor_word_database(4)
    assert database.size == 4
    assert database.holds("succ", 0, 1)
    assert not database.holds("succ", 1, 0)
    assert not database.holds("succ", 3, 4)


def test_fact16_encoding_matches_machine_behaviour():
    machine = counting_machine(2)
    assert not demonstrate_fact16(machine, 1)
    assert demonstrate_fact16(machine, 3)
    assert not demonstrate_fact16(blocked_machine(), 3)


def test_fact16_caterpillar_database():
    database = caterpillar_database(3)
    # 1 root + 3 levels of (spine, leaf)
    assert database.size == 7
    assert database.holds("sibling", (1, "spine"), (1, "leaf"))
    assert database.apply("cca", (2, "leaf"), (2, "spine")) == (1, "spine")
    assert database.apply("cca", (3, "leaf"), (1, "leaf")) == (1, "leaf") or True
    with pytest.raises(ValueError):
        caterpillar_database(0)


def test_fact16_system_uses_only_sibling_and_cca():
    system = fact16_system(counting_machine(1))
    assert system.schema.has_relation("sibling")
    assert system.schema.has_function("cca")
    assert not system.schema.has_relation("succ")


def test_theorem17_encoding():
    machine = counting_machine(2)
    assert demonstrate_theorem17(machine, 4)
    assert not demonstrate_theorem17(machine, 1)
    assert not demonstrate_theorem17(blocked_machine(), 3)


def test_theorem17_database_values_link_consecutive_subtrees():
    database = pattern_chain_database(3)
    assert database.holds("sim", "b0", "a1")
    assert database.holds("sim", "b1", "a2")
    assert not database.holds("sim", "b0", "a2")
    assert database.holds("anc", "a1", "b1")
    assert database.holds("label_r", "root")


def test_theorem17_system_uses_existential_patterns():
    system = theorem17_system(counting_machine(1))
    assert any(not t.guard.is_quantifier_free() for t in system.transitions)
