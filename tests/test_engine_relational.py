"""Integration tests: the Theorem 5 engine over relational theories.

Every answer of the abstraction-based solver is cross-validated -- positive
answers by replaying the produced witness run, negative answers against the
brute-force baseline on bounded database sizes.
"""

import pytest

from repro.baselines import BruteForceSolver, brute_force_emptiness
from repro.fraisse.engine import EmptinessSolver, decide_emptiness
from repro.library import (
    odd_red_cycle_system,
    order_workflow_system,
    red_path_system,
    register_swap_system,
    self_loop_required_system,
    triangle_system,
)
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.relational import (
    AllDatabasesTheory,
    HomTheory,
    bipartite_template,
    clique_template,
    odd_red_cycle_free_template,
)
from repro.relational.csp import COLORED_GRAPH_SCHEMA, GRAPH_SCHEMA
from repro.systems.dds import DatabaseDrivenSystem


def check_both(system, theory, membership=None, max_size=3, expect=None):
    """Run the engine and the brute-force baseline and compare them."""
    result = EmptinessSolver(theory).check(system)
    baseline = brute_force_emptiness(system, max_size=max_size, membership=membership)
    if result.nonempty:
        # Engine positive answers are always certified by run replay already;
        # the baseline must agree whenever its bound is large enough to see
        # the engine's witness.
        if baseline.nonempty is False:
            assert result.run.database.size > max_size
    else:
        assert not baseline.nonempty
    if expect is not None:
        assert result.nonempty is expect
    return result


def test_example1_nonempty_over_all_databases():
    system = odd_red_cycle_system()
    result = check_both(system, AllDatabasesTheory(COLORED_GRAPH_SCHEMA), expect=True)
    assert result.run is not None
    assert result.run.database.size >= 1


def test_example2_empty_over_hom_template():
    """Example 2: no database in HOM(H) drives an accepting run of Example 1."""
    system = odd_red_cycle_system()
    theory = HomTheory(odd_red_cycle_free_template())
    result = check_both(system, theory, membership=theory.membership, expect=False)
    assert result.exhausted


def test_self_loop_system_needs_seed_guessing():
    system = self_loop_required_system()
    result = check_both(system, AllDatabasesTheory(GRAPH_SCHEMA), expect=True)
    # The witness must contain a self loop.
    assert any(a == b for a, b in result.run.database.relation("E"))


def test_triangle_over_bipartite_template_is_empty():
    system = triangle_system()
    theory = HomTheory(bipartite_template())
    result = EmptinessSolver(theory).check(system)
    assert result.empty and result.exhausted


def test_triangle_over_k3_template_is_nonempty():
    system = triangle_system()
    theory = HomTheory(clique_template(3))
    result = EmptinessSolver(theory).check(system)
    assert result.nonempty
    assert theory.membership(result.run.database.project(GRAPH_SCHEMA))


def test_red_path_system_scaling_and_witness_length():
    system = red_path_system(3)
    result = EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA)).check(system)
    assert result.nonempty
    assert result.run.length == 5  # start + 4 path states


def test_register_swap_system():
    system = register_swap_system()
    result = check_both(system, AllDatabasesTheory(GRAPH_SCHEMA), expect=True)
    assert result.nonempty


def test_order_workflow_nonempty_and_hom_restriction():
    system = order_workflow_system()
    all_result = EmptinessSolver(AllDatabasesTheory(system.schema)).check(system)
    assert all_result.nonempty
    # A template where nothing is offered: the workflow can never ship.
    template = Structure(
        system.schema,
        ["t"],
        relations={"offered": set(), "requires": {("t", "t")}, "conflict": set()},
    )
    hom_result = EmptinessSolver(HomTheory(template)).check(system)
    assert hom_result.empty


def test_unsatisfiable_guard_is_empty():
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["a", "b"], initial="a",
        accepting="b", transitions=[("a", "E(x_new, x_new) & !(E(x_new, x_new))", "b")],
    )
    result = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check(system)
    assert result.empty and result.exhausted


def test_initially_accepting_state():
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["a"], initial="a",
        accepting="a", transitions=[],
    )
    result = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check(system)
    assert result.nonempty
    assert result.run.length == 1


def test_no_accepting_states_reachable():
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["a", "b"], initial="a",
        accepting="b", transitions=[],
    )
    result = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check(system)
    assert result.empty


def test_max_configurations_limit_marks_not_exhausted():
    system = odd_red_cycle_system()
    result = EmptinessSolver(
        HomTheory(odd_red_cycle_free_template()), max_configurations=5
    ).check(system)
    assert result.empty and not result.exhausted


def test_decide_emptiness_wrapper():
    assert decide_emptiness(
        self_loop_required_system(), AllDatabasesTheory(GRAPH_SCHEMA)
    ).nonempty


def test_statistics_are_populated():
    result = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check(
        self_loop_required_system()
    )
    stats = result.statistics.as_dict()
    assert stats["configurations_explored"] >= 1
    assert stats["candidates_generated"] >= 1
    assert stats["elapsed_seconds"] >= 0


def test_engine_rejects_schema_mismatch():
    from repro.errors import SolverError

    system = odd_red_cycle_system()  # uses E and red
    with pytest.raises(SolverError):
        EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check(system)


def test_witness_runs_are_replayable_on_witness_database():
    """The soundness contract: every positive answer carries a valid run."""
    for system, theory in [
        (odd_red_cycle_system(), AllDatabasesTheory(COLORED_GRAPH_SCHEMA)),
        (triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA)),
        (self_loop_required_system(), AllDatabasesTheory(GRAPH_SCHEMA)),
    ]:
        result = EmptinessSolver(theory).check(system)
        assert result.nonempty
        system.validate_run(result.run)


def test_agreement_with_brute_force_on_random_single_register_systems():
    """Randomised cross-validation of the PSpace procedure (Theorem 4 / 5)."""
    import random

    rng = random.Random(2013)
    guards = [
        "E(x_old, x_new)",
        "E(x_new, x_old)",
        "E(x_new, x_new)",
        "red(x_new)",
        "!(red(x_new)) & E(x_old, x_new)",
        "x_old = x_new & red(x_old)",
        "!(x_old = x_new)",
    ]
    for trial in range(6):
        transitions = []
        states = ["s0", "s1", "s2"]
        for source in states:
            for target in states:
                if rng.random() < 0.4:
                    transitions.append((source, rng.choice(guards), target))
        transitions.append(("s0", "x_old = x_new", "s1"))
        system = DatabaseDrivenSystem.build(
            schema=COLORED_GRAPH_SCHEMA, registers=["x"], states=states,
            initial="s0", accepting="s2", transitions=transitions,
        )
        engine = EmptinessSolver(AllDatabasesTheory(COLORED_GRAPH_SCHEMA)).check(system)
        baseline = brute_force_emptiness(system, max_size=2)
        if engine.nonempty:
            # Positive answers are certified by run replay; the baseline must
            # agree whenever its size bound covers the engine's witness.
            system.validate_run(engine.run)
            assert baseline.nonempty or engine.run.database.size > 2, (
                f"trial {trial}: engine found a small witness the baseline missed"
            )
        else:
            assert not baseline.nonempty, f"trial {trial}: engine is incomplete"


def test_brute_force_solver_membership_filter():
    system = triangle_system()
    theory = HomTheory(bipartite_template())
    solver = BruteForceSolver(membership=theory.membership)
    result = solver.check(system, max_size=3)
    assert result.empty
    assert result.databases_checked > 0
