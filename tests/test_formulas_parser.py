"""Unit tests for terms, formulas, evaluation and the guard parser."""

import pytest

from repro.errors import FormulaError, ParseError
from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Equality,
    Exists,
    Not,
    Or,
    RelationAtom,
    conj,
    disj,
    eq,
    neq,
    rel,
)
from repro.logic.parser import parse_formula, parse_term
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.logic.terms import FuncTerm, Var, func, var

GRAPH = Schema.relational(E=2, red=1)
TREEISH = Schema(relations={"anc": 2}, functions={"cca": 2})


def graph():
    return Structure(
        GRAPH, [0, 1, 2], relations={"E": {(0, 1), (1, 2)}, "red": {(1,)}}
    )


def tiny_tree():
    return Structure(
        TREEISH,
        [0, 1, 2],
        relations={"anc": {(0, 0), (0, 1), (0, 2), (1, 1), (2, 2)}},
        functions={"cca": {(a, b): (a if a == b else 0) for a in range(3) for b in range(3)}},
    )


def test_variable_evaluation_and_errors():
    assert Var("x").evaluate(graph(), {"x": 1}) == 1
    with pytest.raises(FormulaError):
        Var("x").evaluate(graph(), {})
    with pytest.raises(FormulaError):
        Var("x").evaluate(graph(), {"x": 99})


def test_function_term_evaluation():
    term = func("cca", var("x"), var("y"))
    assert term.evaluate(tiny_tree(), {"x": 1, "y": 2}) == 0
    assert str(term) == "cca(x, y)"
    with pytest.raises(FormulaError):
        func("cca", var("x")).evaluate(tiny_tree(), {"x": 1})
    with pytest.raises(FormulaError):
        func("nope", var("x")).evaluate(tiny_tree(), {"x": 1})


def test_atom_evaluation():
    g = graph()
    assert rel("E", var("x"), var("y")).evaluate(g, {"x": 0, "y": 1})
    assert not rel("E", var("x"), var("y")).evaluate(g, {"x": 1, "y": 0})
    assert rel("red", var("x")).evaluate(g, {"x": 1})
    with pytest.raises(FormulaError):
        rel("blue", var("x")).evaluate(g, {"x": 1})
    with pytest.raises(FormulaError):
        rel("E", var("x")).evaluate(g, {"x": 1})


def test_boolean_connectives():
    g = graph()
    formula = (rel("E", var("x"), var("y")) & rel("red", var("y"))) | eq(var("x"), var("y"))
    assert formula.evaluate(g, {"x": 0, "y": 1})
    assert formula.evaluate(g, {"x": 2, "y": 2})
    assert not formula.evaluate(g, {"x": 2, "y": 0})
    assert (~eq(var("x"), var("y"))).evaluate(g, {"x": 0, "y": 1})
    assert TRUE.evaluate(g, {}) and not FALSE.evaluate(g, {})


def test_conj_disj_flatten():
    a, b, c = (rel("red", var(v)) for v in "xyz")
    assert conj(a, conj(b, c)) == And((a, b, c))
    assert disj(a, disj(b, c)) == Or((a, b, c))
    assert conj() is TRUE
    assert disj() is FALSE
    assert conj(a) is a


def test_free_variables():
    formula = conj(rel("E", var("x"), var("y")), Exists(("z",), rel("E", var("y"), var("z"))))
    assert formula.free_variables() == frozenset({"x", "y"})
    assert not formula.is_quantifier_free()


def test_exists_semantics():
    g = graph()
    formula = Exists(("z",), rel("E", var("x"), var("z")))
    assert formula.evaluate(g, {"x": 0})
    assert not formula.evaluate(g, {"x": 2})


def test_exists_distinct_semantics():
    g = graph()
    two_distinct_red = Exists(("u", "v"), conj(rel("red", var("u")), rel("red", var("v"))), distinct=True)
    two_red = Exists(("u", "v"), conj(rel("red", var("u")), rel("red", var("v"))))
    assert two_red.evaluate(g, {})
    assert not two_distinct_red.evaluate(g, {})


def test_substitution_and_renaming():
    formula = rel("E", var("x"), var("y"))
    renamed = formula.rename_variables({"x": "a"})
    assert renamed == rel("E", var("a"), var("y"))
    substituted = formula.substitute({"y": func("cca", var("x"), var("x"))})
    assert isinstance(substituted.args[1], FuncTerm)
    with pytest.raises(FormulaError):
        Exists(("z",), rel("E", var("x"), var("z"))).substitute({"x": var("z")})


def test_atoms_iteration():
    formula = conj(rel("E", var("x"), var("y")), Not(eq(var("x"), var("y"))))
    atoms = list(formula.atoms())
    assert len(atoms) == 2
    assert any(isinstance(a, RelationAtom) for a in atoms)
    assert any(isinstance(a, Equality) for a in atoms)


# -- parser ---------------------------------------------------------------------------------------


def test_parse_simple_guard():
    formula = parse_formula("x_old = x_new & E(y_old, y_new) & red(y_new)")
    g = graph()
    assert formula.evaluate(g, {"x_old": 0, "x_new": 0, "y_old": 0, "y_new": 1})
    assert not formula.evaluate(g, {"x_old": 0, "x_new": 2, "y_old": 0, "y_new": 1})


def test_parse_inequality_and_negation():
    formula = parse_formula("!(x = y) & x != z")
    assert formula == conj(Not(eq(var("x"), var("y"))), neq(var("x"), var("z")))


def test_parse_function_terms():
    formula = parse_formula("anc(cca(x, y), x)")
    assert formula.evaluate(tiny_tree(), {"x": 1, "y": 2})
    term = parse_term("cca(cca(x, y), z)")
    assert isinstance(term, FuncTerm)


def test_parse_precedence_and_parentheses():
    formula = parse_formula("red(x) | red(y) & x = y")
    # '&' binds tighter than '|'
    g = graph()
    assert formula.evaluate(g, {"x": 1, "y": 0})
    grouped = parse_formula("(red(x) | red(y)) & x = y")
    assert not grouped.evaluate(g, {"x": 1, "y": 0})


def test_parse_exists_forms():
    formula = parse_formula("exists u, v . E(u, v) & red(v)")
    assert isinstance(formula, Exists)
    assert formula.evaluate(graph(), {})
    distinct = parse_formula("exists!= u, v . red(u) & red(v)")
    assert isinstance(distinct, Exists) and distinct.distinct
    assert not distinct.evaluate(graph(), {})


def test_parse_true_false_and_errors():
    assert parse_formula("true") is TRUE
    assert parse_formula("false") is FALSE
    for bad in ["", "E(x", "x =", "E(x, y) &", "& x = y", "x", "x = y extra", "E(x, y"]:
        with pytest.raises(ParseError):
            parse_formula(bad)


def test_parse_roundtrip_through_str():
    formula = parse_formula("(E(x, y) & !(x = y)) | red(cca_like)")
    # str() output is re-parseable
    assert parse_formula(str(formula)) is not None
