"""Property-based tests (hypothesis) for the core invariants of the paper.

* quantifier-free formulas are invariant under embeddings (the engine's
  soundness hinge, Lemma 6);
* the word run class satisfies the Lemma 12 characterisation and is closed
  under the amalgamation step used in Proposition 2;
* generated substructures / closure laws;
* HOM membership is monotone under removing tuples;
* the canonical abstraction key is isomorphism-invariant.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines.enumeration import random_colored_graph
from repro.fraisse.base import generic_abstraction_key
from repro.logic.morphisms import find_homomorphism, is_embedding
from repro.logic.parser import parse_formula
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.relational.csp import COLORED_GRAPH_SCHEMA, clique_template
from repro.words import NFA, PositionAutomaton, in_class_c, rundb

GRAPH = Schema.relational(E=2, red=1)

GUARDS = [
    "E(x, y) & red(y)",
    "!(E(y, x)) | x = y",
    "red(x) & !(red(y))",
    "E(x, x) | (E(x, y) & E(y, x))",
    "!(x = y) & !(E(x, y))",
]


@st.composite
def colored_graphs(draw, max_size=4):
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_colored_graph(size, rng=random.Random(seed))


@st.composite
def graph_with_extension(draw):
    """A graph together with a strictly larger extension it embeds into."""
    base = draw(colored_graphs(max_size=3))
    extra = draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    nodes = list(base.domain) + [("new", i) for i in range(extra)]
    edges = set(base.relation("E"))
    red = set(base.relation("red"))
    for new_node in [n for n in nodes if isinstance(n, tuple)]:
        for other in nodes:
            if rng.random() < 0.4:
                edges.add((new_node, other))
            if rng.random() < 0.4 and other != new_node:
                edges.add((other, new_node))
        if rng.random() < 0.5:
            red.add((new_node,))
    extension = Structure(COLORED_GRAPH_SCHEMA, nodes, relations={"E": edges, "red": red},
                          validate=False)
    return base, extension


@settings(max_examples=40, deadline=None)
@given(graph_with_extension(), st.sampled_from(GUARDS))
def test_quantifier_free_formulas_invariant_under_embeddings(pair, guard_text):
    """Lemma 6's engine-side core: extending the database never changes the
    truth of a quantifier-free formula on the old elements."""
    base, extension = pair
    identity = {e: e for e in base.domain}
    assert is_embedding(identity, base, extension)
    formula = parse_formula(guard_text)
    elements = sorted(base.domain, key=repr)
    for x in elements:
        for y in elements:
            valuation = {"x": x, "y": y}
            assert formula.evaluate(base, valuation) == formula.evaluate(extension, valuation)


@settings(max_examples=40, deadline=None)
@given(colored_graphs())
def test_generated_substructure_laws(graph):
    elements = sorted(graph.domain, key=repr)
    subset = elements[: max(1, len(elements) // 2)]
    generated = graph.generated_substructure(subset)
    assert generated.is_substructure_of(graph)
    assert generated.domain == frozenset(subset)  # relational: closure adds nothing
    # Idempotence.
    again = generated.generated_substructure(subset)
    assert again == generated


@settings(max_examples=40, deadline=None)
@given(colored_graphs())
def test_hom_membership_monotone_under_tuple_removal(graph):
    template = clique_template(2)
    projected = graph.project(Schema.relational(E=2))
    if find_homomorphism(projected, template) is None:
        return
    edges = sorted(projected.relation("E"), key=repr)
    if not edges:
        return
    smaller = projected.without_tuple("E", *edges[0])
    assert find_homomorphism(smaller, template) is not None


@settings(max_examples=30, deadline=None)
@given(colored_graphs(), st.integers(min_value=0, max_value=10_000))
def test_abstraction_key_is_isomorphism_invariant(graph, seed):
    elements = sorted(graph.domain, key=repr)
    registers = {"x": elements[0], "y": elements[-1]}
    rng = random.Random(seed)
    relabel = {e: ("copy", i) for i, e in enumerate(elements)}
    renamed = graph.rename(relabel)
    renamed_registers = {r: relabel[v] for r, v in registers.items()}
    assert generic_abstraction_key(graph, registers) == generic_abstraction_key(
        renamed, renamed_registers
    )


def _one_b_automaton():
    nfa = NFA.make(
        states=["s0", "s1"], alphabet=["a", "b"],
        transitions=[("s0", "a", "s0"), ("s0", "b", "s1"), ("s1", "a", "s1")],
        initial=["s0"], accepting=["s1"],
    )
    return nfa, PositionAutomaton.from_nfa(nfa)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=6))
def test_lemma12_characterisation_on_words(letters):
    """A pre-run of an accepted word satisfies the chain condition; words with
    the wrong number of b's admit no run at all."""
    nfa, automaton = _one_b_automaton()
    word = tuple(letters)
    run = automaton.accepts_with_run(word)
    if nfa.accepts(word):
        assert run is not None
        assert in_class_c(automaton, list(enumerate(run)))
    else:
        assert run is None


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=5),
       st.integers(min_value=0, max_value=100))
def test_proposition2_substructures_of_runs_amalgamate(letters, seed):
    """Proposition 2 on sampled instances: two pointer-closed substructures of
    the same run database are consistent and their union is again a
    substructure of that run database (the inclusion amalgamation step)."""
    nfa, automaton = _one_b_automaton()
    word = tuple(letters)
    if not nfa.accepts(word):
        return
    run = automaton.accepts_with_run(word)
    database = rundb(automaton, list(enumerate(run)))
    rng = random.Random(seed)
    positions = sorted(database.domain)
    sample_a = {p for p in positions if rng.random() < 0.6} or {positions[0]}
    sample_b = {p for p in positions if rng.random() < 0.6} or {positions[-1]}
    left = database.generated_substructure(sample_a)
    right = database.generated_substructure(sample_b)
    union_domain = set(left.domain) | set(right.domain)
    union = database.generated_substructure(union_domain)
    assert left.is_substructure_of(union)
    assert right.is_substructure_of(union)
    assert union.is_substructure_of(database)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=5))
def test_word_theory_membership_matches_nfa(letters):
    from repro.words import WordRunTheory, worddb

    nfa, _ = _one_b_automaton()
    theory = WordRunTheory(nfa)
    word = tuple(letters)
    assert theory.membership(worddb(word, ["a", "b"])) == nfa.accepts(word)
