"""Chaos suite: injected faults against the real execution stack.

Every test here runs the *production* code path -- supervised spawn
workers, the retry policy, the SQLite store, the HTTP server -- with
faults armed through `repro.faults`, and asserts the fault-tolerance
contract: verdicts identical to a fault-free serial run, bounded
completion (no hangs), transient failures never cached as verdicts, and a
clean drain on SIGTERM.

Crash/hang faults are armed via the ``REPRO_FAULTS`` environment variable
(the only channel that reaches spawned workers) with ``match``/``attempt``
selectors, which fire deterministically regardless of which worker process
picks a job up.  Store faults fire in the parent and are installed
programmatically.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro import faults
from repro.faults import FAULTS_ENV_VAR
from repro.service import BatchRunner, ResultStore, RetryPolicy, run_batch
from repro.service.server import ServerThread, VerificationService
from repro.service.client import ServiceClient, ServiceError
from repro.workloads import generate_jobs

#: Generous per-job budget: chaos jobs are light, the budget only has to be
#: far above their real runtime so no *un*-injected deadline ever fires.
JOB_TIMEOUT = 30.0


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    faults.registry.clear()
    yield
    faults.registry.clear()


def _verdicts(results):
    return [(r.fingerprint, r.nonempty, r.exhausted) for r in results]


class TestChaosBatch:
    def test_crashes_and_store_faults_preserve_verdicts(self, tmp_path, monkeypatch):
        """>= 20 jobs with worker kills and a store write failure complete
        with verdicts identical to a fault-free serial run."""
        jobs = generate_jobs(24, seed=7)
        reference = run_batch(jobs, workers=1)
        assert all(result.ok for result in reference.results)

        # Kill the worker on the first attempt of three specific jobs --
        # match/attempt selectors fire identically in any worker process.
        prefixes = [jobs[i].fingerprint[:12] for i in (0, 9, 17)]
        monkeypatch.setenv(
            FAULTS_ENV_VAR,
            ";".join(f"worker.crash:match={p},attempt=1" for p in prefixes),
        )
        # And fail the first verdict write in the parent.
        faults.registry.install("store.put", times=1)

        store = ResultStore(tmp_path / "chaos.sqlite")
        runner = BatchRunner(
            store=store,
            workers=3,
            timeout_seconds=JOB_TIMEOUT,
            retry_policy=RetryPolicy.with_retries(1),
        )
        started = time.monotonic()
        report = runner.run(jobs)
        elapsed = time.monotonic() - started
        assert elapsed < 120, "chaos batch must complete, not hang"

        assert _verdicts(report.results) == _verdicts(reference.results)
        crashed = [r for r in report.results if r.attempts > 1]
        assert len(crashed) == 3
        assert report.fault_tolerance["worker_crashes"] == 3
        assert report.fault_tolerance["retries"] == 3
        assert report.fault_tolerance["worker_respawns"] >= 3
        assert report.fault_tolerance["store_put_retries"] >= 1
        # Every verdict made it to the store despite the injected write error.
        assert len(store) == len(jobs)
        store.close()

    def test_hung_worker_is_killed_at_deadline_and_retried(self, monkeypatch):
        jobs = generate_jobs(2, seed=11)
        monkeypatch.setenv(FAULTS_ENV_VAR, "worker.hang:attempt=1,delay=60")
        runner = BatchRunner(
            workers=2,
            timeout_seconds=1.5,
            grace_seconds=1.0,
            retry_policy=RetryPolicy.with_retries(1),
        )
        started = time.monotonic()
        report = runner.run(jobs)
        elapsed = time.monotonic() - started
        # Bounded by (timeout + grace) per attempt, nowhere near the 60s hang.
        assert elapsed < 30
        assert all(result.ok for result in report.results)
        assert all(result.attempts == 2 for result in report.results)
        assert report.fault_tolerance["deadline_exceeded"] == 2

    def test_exhausted_retries_surface_structured_error(self, monkeypatch):
        jobs = generate_jobs(2, seed=13)
        prefix = jobs[0].fingerprint[:12]
        # Crash job 0 on *every* attempt: no attempt/times selector.
        monkeypatch.setenv(FAULTS_ENV_VAR, f"worker.crash:match={prefix}")
        runner = BatchRunner(
            workers=2,
            timeout_seconds=JOB_TIMEOUT,
            retry_policy=RetryPolicy.with_retries(1),
        )
        report = runner.run(jobs)
        by_fp = {r.fingerprint: r for r in report.results}
        failed = by_fp[jobs[0].fingerprint]
        assert failed.error_code == "worker-crashed"
        assert failed.attempts == 2
        assert f"exit code {faults.CRASH_EXIT_CODE}" in failed.error
        assert by_fp[jobs[1].fingerprint].ok


class TestTransientErrorsNotCached:
    def test_crash_rows_are_store_misses_and_reexecute(self, tmp_path, monkeypatch):
        jobs = generate_jobs(2, seed=17)
        fp0 = jobs[0].fingerprint
        monkeypatch.setenv(FAULTS_ENV_VAR, f"worker.crash:match={fp0[:12]}")
        store = ResultStore(tmp_path / "transient.sqlite")
        runner = BatchRunner(store=store, workers=2, timeout_seconds=JOB_TIMEOUT)
        report = runner.run(jobs)
        by_fp = {r.fingerprint: r for r in report.results}
        assert by_fp[fp0].error_code == "worker-crashed"

        # The failure is recorded for inspection but never served as a verdict.
        assert store.get(fp0) is None
        recorded = store.get(fp0, include_errors=True)
        assert recorded is not None and recorded.error_code == "worker-crashed"

        # Resubmission with the fault disarmed re-executes and overwrites.
        monkeypatch.delenv(FAULTS_ENV_VAR)
        report2 = BatchRunner(store=store, workers=2, timeout_seconds=JOB_TIMEOUT).run(jobs)
        by_fp2 = {r.fingerprint: r for r in report2.results}
        assert by_fp2[fp0].ok and not by_fp2[fp0].cached
        assert store.get(fp0) is not None and store.get(fp0).ok
        store.close()


class TestGracefulDrain:
    def test_drain_refuses_work_and_finishes_clean(self):
        service = VerificationService(store=ResultStore.in_memory())
        with ServerThread(service=service) as server:
            with ServiceClient(server.base_url, retries=0) as client:
                assert client.healthz()["status"] == "ok"
                job = generate_jobs(1, seed=19)[0]
                client.submit_job(job)  # real work before the drain

                assert server.drain(timeout=5.0) is True
                assert service.draining

                # The established keep-alive connection survives the drain,
                # but new work on it is refused with the machine code.
                with pytest.raises(ServiceError) as excinfo:
                    client.submit_job(job)
                assert excinfo.value.status == 503
                assert excinfo.value.code == "draining"

                health = client.healthz()
                assert health["status"] == "draining"
                exposition = client.metrics()
                assert "repro_draining 1" in exposition
                assert "repro_drain_rejected_total 1" in exposition

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        port_file = tmp_path / "port"
        env = {**os.environ, "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src")}
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--port-file",
                str(port_file),
                "--store",
                str(tmp_path / "drain.sqlite"),
                "--drain-timeout",
                "10",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() and time.monotonic() < deadline:
                assert process.poll() is None, process.stdout.read()
                time.sleep(0.05)
            port = int(port_file.read_text().strip())

            # One real round trip so the drain has a served request behind it.
            spec = json.dumps(generate_jobs(1, seed=23)[0].to_spec()).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/jobs",
                data=spec,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200

            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=20)
            output = process.stdout.read()
            assert returncode == 0, output
            assert "draining" in output
            assert "drained cleanly" in output
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
