"""Tests for the pluggable store backends: parity, TTL, eviction, migrations."""

import json
import sqlite3
import time

import pytest

from repro.errors import StoreError
from repro.library import triangle_system
from repro.relational import GRAPH_SCHEMA, AllDatabasesTheory, HomTheory, clique_template
from repro.service import (
    JobResult,
    MemoryBackend,
    ResultStore,
    SQLiteBackend,
    VerificationJob,
    execute_job,
)
from repro.service.backends import SQLITE_SCHEMA_VERSION


def _decided_job(label="", max_configurations=20_000):
    job = VerificationJob(
        triangle_system(),
        AllDatabasesTheory(GRAPH_SCHEMA),
        label=label,
        max_configurations=max_configurations,
    )
    return job, execute_job(job)


def _distinct_jobs(count):
    """Jobs with distinct fingerprints (varying the configuration cap)."""
    pairs = []
    for index in range(count):
        pairs.append(_decided_job(label=f"job-{index}", max_configurations=10_000 + index))
    return pairs


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = MemoryBackend()
    else:
        backend = SQLiteBackend(tmp_path / "store.sqlite")
    with ResultStore(backend=backend) as result_store:
        yield result_store


class TestBackendParity:
    """Both shipped backends must behave identically through ResultStore."""

    def test_round_trip(self, store):
        job, result = _decided_job(label="round-trip")
        assert store.get(job.fingerprint) is None
        store.put(job, result)
        cached = store.get(job.fingerprint)
        assert cached is not None and cached.cached
        assert cached.nonempty == result.nonempty
        assert cached.exhausted == result.exhausted
        assert cached.statistics == result.statistics
        assert job.fingerprint in store
        assert len(store) == 1
        assert list(store.fingerprints()) == [job.fingerprint]

    def test_clear_and_export(self, store):
        job, result = _decided_job()
        store.put(job, result)
        export = store.export()
        assert export["count"] == 1
        assert export["backend"].split(":")[0] in ("memory", "sqlite")
        assert export["results"][0]["fingerprint"] == job.fingerprint
        assert store.clear() == 1
        assert len(store) == 0

    def test_overwrite_same_fingerprint(self, store):
        job, result = _decided_job()
        store.put(job, result)
        store.put(job, result)
        assert len(store) == 1

    def test_wall_seconds_and_trace_round_trip(self, store):
        # Schema v3 columns: measured wall clock and the opt-in solver trace
        # must survive storage on both backends.
        job = VerificationJob(
            triangle_system(),
            AllDatabasesTheory(GRAPH_SCHEMA),
            label="traced",
            trace=True,
        )
        result = execute_job(job)
        result.wall_seconds = 1.25
        assert result.trace is not None and result.trace["spans"]
        store.put(job, result)
        cached = store.get(job.fingerprint)
        assert cached.wall_seconds == pytest.approx(1.25)
        assert cached.trace == result.trace

    def test_certificate_round_trip(self, store):
        # Schema v5 column: the encoded witness certificate must survive
        # storage on both backends and still validate after the round trip.
        from repro.certify import validate_encoded

        job = VerificationJob(
            triangle_system(),
            AllDatabasesTheory(GRAPH_SCHEMA),
            label="certified",
            certificate=True,
        )
        result = execute_job(job)
        assert result.certificate
        store.put(job, result)
        cached = store.get(job.fingerprint)
        assert cached.certificate == result.certificate
        report = validate_encoded(cached.certificate)
        assert report["theory_kind"] == "all_databases"

    def test_uncertified_result_round_trips_with_null_certificate(self, store):
        job, result = _decided_job()
        assert result.certificate is None
        store.put(job, result)
        assert store.get(job.fingerprint).certificate is None

    def test_untraced_result_round_trips_with_null_trace(self, store):
        job, result = _decided_job(label="untraced")
        assert result.trace is None
        store.put(job, result)
        assert store.get(job.fingerprint).trace is None


class TestRetention:
    def test_ttl_expiry_reads_as_missing(self):
        job, result = _decided_job()
        with ResultStore.in_memory(ttl_seconds=0.15) as store:
            store.put(job, result)
            assert store.get(job.fingerprint) is not None
            time.sleep(0.2)
            assert store.get(job.fingerprint) is None
            assert job.fingerprint not in store
            # Lazily deleted on the expired read.
            assert len(store) == 0

    def test_purge_expired_sweeps_eagerly(self, tmp_path):
        pairs = _distinct_jobs(3)
        with ResultStore(tmp_path / "ttl.sqlite", ttl_seconds=0.15) as store:
            for job, result in pairs:
                store.put(job, result)
            assert store.purge_expired() == 0
            time.sleep(0.2)
            assert store.purge_expired() == 3
            assert len(store) == 0

    def test_len_fingerprints_export_exclude_expired(self):
        # Counts and exports must agree with get()'s expiry semantics even
        # when nothing has read the expired entry yet.
        job, result = _decided_job()
        with ResultStore.in_memory(ttl_seconds=0.15) as store:
            store.put(job, result)
            time.sleep(0.2)
            assert len(store) == 0
            assert list(store.fingerprints()) == []
            assert store.export()["count"] == 0

    def test_purge_without_ttl_is_noop(self):
        job, result = _decided_job()
        with ResultStore.in_memory() as store:
            store.put(job, result)
            assert store.purge_expired() == 0
            assert len(store) == 1

    def test_max_entries_evicts_oldest(self):
        pairs = _distinct_jobs(3)
        with ResultStore.in_memory(max_entries=2) as store:
            for job, result in pairs:
                store.put(job, result)
                time.sleep(0.01)  # distinct created_at stamps
            assert len(store) == 2
            assert pairs[0][0].fingerprint not in store
            assert pairs[1][0].fingerprint in store
            assert pairs[2][0].fingerprint in store

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ResultStore.in_memory(ttl_seconds=0.0)
        with pytest.raises(ValueError):
            ResultStore.in_memory(max_entries=0)


_LEGACY_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    created_at REAL NOT NULL,
    label TEXT NOT NULL DEFAULT '',
    nonempty INTEGER NOT NULL,
    exhausted INTEGER NOT NULL,
    elapsed_seconds REAL NOT NULL,
    witness_size INTEGER,
    run_length INTEGER,
    statistics TEXT NOT NULL,
    job_spec TEXT NOT NULL
)
"""


class TestSQLiteMigrations:
    def test_fresh_database_gets_current_version(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "fresh.sqlite")
        assert backend.schema_version == SQLITE_SCHEMA_VERSION
        backend.close()

    def test_legacy_store_migrates_in_place(self, tmp_path):
        # A PR-2 era store: results table, no user_version, one verdict.
        path = tmp_path / "legacy.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(_LEGACY_SCHEMA)
        connection.execute(
            "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            ("f" * 64, time.time(), "legacy", 1, 1, 0.5, 3, 2, "{}", "{}"),
        )
        connection.commit()
        connection.close()

        backend = SQLiteBackend(path)
        try:
            assert backend.schema_version == SQLITE_SCHEMA_VERSION
            row = backend.get("f" * 64)
            assert row is not None and row["label"] == "legacy"
            # The v2 migration added the created_at index.
            names = {
                name
                for (name,) in sqlite3.connect(path).execute(
                    "SELECT name FROM sqlite_master WHERE type = 'index'"
                )
            }
            assert "idx_results_created_at" in names
        finally:
            backend.close()

    def test_v4_store_migrates_to_v5_with_null_certificates(self, tmp_path):
        # A PR-7..9 era store: full row shape minus the certificate column.
        path = tmp_path / "v4.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(
            """
            CREATE TABLE results (
                fingerprint TEXT PRIMARY KEY,
                created_at REAL NOT NULL,
                label TEXT NOT NULL DEFAULT '',
                nonempty INTEGER NOT NULL,
                exhausted INTEGER NOT NULL,
                elapsed_seconds REAL NOT NULL,
                witness_size INTEGER,
                run_length INTEGER,
                statistics TEXT NOT NULL,
                job_spec TEXT NOT NULL,
                wall_seconds REAL,
                trace TEXT,
                error TEXT,
                error_code TEXT,
                cacheable INTEGER NOT NULL DEFAULT 1,
                expires_at REAL
            )
            """
        )
        connection.execute(
            "INSERT INTO results (fingerprint, created_at, label, nonempty, "
            "exhausted, elapsed_seconds, statistics, job_spec) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            ("e" * 64, time.time(), "v4-row", 1, 1, 0.25, "{}", "{}"),
        )
        connection.execute("PRAGMA user_version = 4")
        connection.commit()
        connection.close()

        backend = SQLiteBackend(path)
        try:
            assert backend.schema_version == SQLITE_SCHEMA_VERSION
            row = backend.get("e" * 64)
            assert row is not None and row["label"] == "v4-row"
            # Pre-certificate rows upgrade in place with no certificate.
            assert row.get("certificate") is None
        finally:
            backend.close()
        # The migrated store serves the old verdict through the full API.
        with ResultStore(path) as store:
            cached = store.get("e" * 64)
            assert cached is not None and cached.certificate is None

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "future.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(_LEGACY_SCHEMA)
        connection.execute(f"PRAGMA user_version = {SQLITE_SCHEMA_VERSION + 7}")
        connection.commit()
        connection.close()
        with pytest.raises(StoreError):
            SQLiteBackend(path)

    def test_reopen_keeps_version_and_data(self, tmp_path):
        path = tmp_path / "reopen.sqlite"
        job, result = _decided_job(label="persisted")
        with ResultStore(path) as store:
            store.put(job, result)
        backend = SQLiteBackend(path)
        try:
            assert backend.schema_version == SQLITE_SCHEMA_VERSION
            assert backend.count() == 1
        finally:
            backend.close()


class TestKeyspaceScans:
    """The eviction/TTL scan primitives every backend must honour."""

    @pytest.mark.parametrize("kind", ["memory", "sqlite"])
    def test_oldest_and_expired_keys(self, kind, tmp_path):
        backend = MemoryBackend() if kind == "memory" else SQLiteBackend(tmp_path / "scan.sqlite")
        try:
            base = 1000.0
            for index, key in enumerate(["kc", "ka", "kb"]):
                backend.put(
                    key,
                    {
                        "fingerprint": key,
                        "created_at": base + index,
                        "label": "",
                        "nonempty": 1,
                        "exhausted": 1,
                        "elapsed_seconds": 0.0,
                        "witness_size": None,
                        "run_length": None,
                        "statistics": "{}",
                        "job_spec": "{}",
                    },
                )
            assert backend.oldest_keys(2) == ["kc", "ka"]
            assert backend.expired_keys(base + 1.5) == sorted(["kc", "ka"])
            assert backend.keys() == ["ka", "kb", "kc"]
            assert backend.delete("ka") and not backend.delete("ka")
            rows = list(backend.rows())
            assert [row["fingerprint"] for row in rows] == ["kb", "kc"]
            assert all(json.loads(row["statistics"]) == {} for row in rows)
        finally:
            backend.close()


class TestStoreServiceIntegration:
    def test_hom_job_round_trips_through_sqlite(self, tmp_path):
        job = VerificationJob(triangle_system(), HomTheory(clique_template(2)), label="hom")
        result = execute_job(job)
        with ResultStore(tmp_path / "hom.sqlite") as store:
            store.put(job, result)
        with ResultStore(tmp_path / "hom.sqlite") as store:
            cached = store.get(job.fingerprint)
            assert cached is not None and cached.nonempty == result.nonempty


def _transient_failure(job):
    return JobResult(
        fingerprint=job.fingerprint,
        label=job.label,
        error="worker-crashed: worker process died mid-job (exit code 86)",
        error_code="worker-crashed",
    )


class TestErrorRows:
    """Schema v4: transient failures stored as non-cacheable, short-lived rows."""

    def test_put_rejects_errored_results(self, store):
        job, _ = _decided_job()
        with pytest.raises(ValueError):
            store.put(job, _transient_failure(job))

    def test_put_error_requires_an_error(self, store):
        job, result = _decided_job()
        with pytest.raises(ValueError):
            store.put_error(job, result)

    def test_error_rows_read_as_misses(self, store):
        job, _ = _decided_job(label="failing")
        store.put_error(job, _transient_failure(job))
        assert store.stats.error_puts == 1
        # Invisible to the warm-cache path: the job re-executes on resubmit.
        assert store.get(job.fingerprint) is None
        # But inspectable when asked for explicitly.
        recorded = store.get(job.fingerprint, include_errors=True)
        assert recorded is not None
        assert recorded.error_code == "worker-crashed"
        assert recorded.nonempty is None and not recorded.ok

    def test_error_rows_expire_on_their_own_ttl(self, store):
        job, _ = _decided_job()
        store.put_error(job, _transient_failure(job), ttl_seconds=0.05)
        time.sleep(0.1)
        assert store.get(job.fingerprint, include_errors=True) is None
        assert store.stats.ttl_expirations == 1

    def test_successful_put_overwrites_error_row(self, store):
        job, result = _decided_job()
        store.put_error(job, _transient_failure(job))
        store.put(job, result)
        cached = store.get(job.fingerprint)
        assert cached is not None and cached.ok
        assert cached.nonempty == result.nonempty

    def test_export_marks_error_rows(self, store):
        job, _ = _decided_job(label="failing")
        store.put_error(job, _transient_failure(job))
        export = store.export()
        assert export["schema_version"] == 4
        (entry,) = export["results"]
        assert entry["error_code"] == "worker-crashed"
        assert entry["cacheable"] is False


class TestDurability:
    """WAL journaling and the graceful-drain checkpoint hook."""

    def test_file_backed_store_runs_in_wal_mode(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "wal.sqlite")
        try:
            assert backend.wal_enabled
        finally:
            backend.close()

    def test_memory_store_skips_wal(self):
        backend = SQLiteBackend(":memory:")
        try:
            assert not backend.wal_enabled
        finally:
            backend.close()

    def test_checkpoint_flushes_wal_to_main_database(self, tmp_path):
        path = tmp_path / "ckpt.sqlite"
        store = ResultStore(path)
        try:
            for job, result in _distinct_jobs(3):
                store.put(job, result)
            store.checkpoint()
            # After a TRUNCATE checkpoint the WAL carries no frames: every
            # verdict is in the main database file, visible to a reader
            # that never touches the WAL.
            wal = path.with_name(path.name + "-wal")
            assert not wal.exists() or wal.stat().st_size == 0
        finally:
            store.close()
        with ResultStore(path) as reopened:
            assert len(reopened) == 3

    def test_checkpoint_is_a_noop_for_memory_backend(self):
        store = ResultStore(backend=MemoryBackend())
        store.checkpoint()  # must not raise

    def test_migrated_legacy_store_accepts_error_rows(self, tmp_path):
        path = tmp_path / "legacy-err.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(_LEGACY_SCHEMA)
        connection.commit()
        connection.close()
        with ResultStore(path) as store:
            job, _ = _decided_job()
            store.put_error(job, _transient_failure(job))
            assert store.get(job.fingerprint) is None
            recorded = store.get(job.fingerprint, include_errors=True)
            assert recorded is not None and recorded.error_code == "worker-crashed"
