"""Unit tests for finite structures (repro.logic.structures)."""

import pytest

from repro.errors import StructureError
from repro.logic.schema import Schema
from repro.logic.structures import Structure, empty_structure, singleton_structure

GRAPH = Schema.relational(E=2, red=1)
TREEISH = Schema(relations={"anc": 2}, functions={"cca": 2})


def triangle():
    return Structure(
        GRAPH, [0, 1, 2], relations={"E": {(0, 1), (1, 2), (2, 0)}, "red": {(0,)}}
    )


def test_basic_accessors():
    g = triangle()
    assert g.size == 3
    assert g.holds("E", 0, 1)
    assert not g.holds("E", 1, 0)
    assert g.holds("red", 0)
    assert 2 in g
    assert len(g) == 3


def test_validation_rejects_bad_arity_and_foreign_elements():
    with pytest.raises(StructureError):
        Structure(GRAPH, [0], relations={"E": {(0,)}})
    with pytest.raises(StructureError):
        Structure(GRAPH, [0], relations={"E": {(0, 5)}})
    with pytest.raises(StructureError):
        Structure(GRAPH, [0], relations={"missing": {(0,)}})


def test_functions_must_be_total():
    with pytest.raises(StructureError):
        Structure(TREEISH, [0, 1], functions={"cca": {(0, 0): 0}})
    ok = Structure(
        TREEISH,
        [0, 1],
        relations={"anc": {(0, 0), (0, 1), (1, 1)}},
        functions={"cca": {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}},
    )
    assert ok.apply("cca", 0, 1) == 0


def test_with_tuple_and_without_tuple_are_functional():
    g = triangle()
    g2 = g.with_tuple("red", 1)
    assert g2.holds("red", 1)
    assert not g.holds("red", 1)
    g3 = g2.without_tuple("red", 1)
    assert not g3.holds("red", 1)


def test_with_element_only_for_relational():
    g = triangle().with_element(7)
    assert 7 in g
    t = singleton_structure(TREEISH)
    with pytest.raises(StructureError):
        t.with_element(3)


def test_closure_and_generated_substructure():
    t = Structure(
        TREEISH,
        [0, 1, 2],
        relations={"anc": {(0, 0), (0, 1), (0, 2), (1, 1), (2, 2)}},
        functions={
            "cca": {
                (a, b): (a if a == b else 0) for a in range(3) for b in range(3)
            }
        },
    )
    closure = t.closure([1, 2])
    assert closure == frozenset({0, 1, 2})
    generated = t.generated_substructure([1, 2])
    assert generated.domain == frozenset({0, 1, 2})
    assert t.closure([1]) == frozenset({1})


def test_restrict_requires_closure():
    unary = Schema(functions={"f": 1})
    t = Structure(unary, [0, 1], functions={"f": {(0,): 0, (1,): 0}})
    # {1} is not closed under f (f(1) = 0), so restricting to it must fail.
    with pytest.raises(StructureError):
        t.restrict([1])
    assert t.generated_substructure([1]).domain == frozenset({0, 1})
    restricted = t.restrict([0, 1])
    assert restricted.domain == frozenset({0, 1})


def test_induced_substructure_relations():
    g = triangle()
    sub = g.restrict([0, 1])
    assert sub.relation("E") == frozenset({(0, 1)})
    assert sub.is_substructure_of(g)
    assert not g.is_substructure_of(sub)


def test_project_and_expand():
    g = triangle()
    projected = g.project(Schema.relational(E=2))
    assert not projected.schema.has_relation("red")
    expanded = projected.expand(GRAPH, relations={"red": {(1,)}})
    assert expanded.holds("red", 1)
    with pytest.raises(StructureError):
        g.project(Schema.relational(blue=1))


def test_rename_injective():
    g = triangle()
    renamed = g.rename({0: "a", 1: "b", 2: "c"})
    assert renamed.holds("E", "a", "b")
    with pytest.raises(StructureError):
        g.rename({0: 1})


def test_disjoint_union():
    g = triangle()
    union = g.disjoint_union(g)
    assert union.size == 6
    assert union.holds("E", (0, 0), (0, 1))
    assert union.holds("E", (1, 0), (1, 1))
    assert not union.holds("E", (0, 0), (1, 1))


def test_equality_and_hash():
    assert triangle() == triangle()
    assert hash(triangle()) == hash(triangle())
    assert triangle() != triangle().with_tuple("red", 2)


def test_empty_and_singleton():
    e = empty_structure(Schema.relational(E=2))
    assert e.size == 0
    s = singleton_structure(TREEISH, "x")
    assert s.apply("cca", "x", "x") == "x"


def test_describe_and_tuple_count():
    g = triangle()
    assert g.tuple_count() == 4
    text = g.describe()
    assert "E" in text and "red" in text


# -- canonicalisation / interning layer ----------------------------------------


def test_canonical_key_is_content_canonical():
    a = Structure(GRAPH, [0, 1], relations={"E": [(0, 1), (1, 0)], "red": [(0,)]})
    b = Structure(GRAPH, [1, 0], relations={"E": [(1, 0), (0, 1)], "red": [(0,)]})
    assert a.canonical_key() == b.canonical_key()
    c = a.with_tuple("red", 1)
    assert a.canonical_key() != c.canonical_key()


def test_tuples_touching_index_matches_relations():
    g = triangle()
    facts = set(g.tuples_touching(0))
    assert facts == {("E", (0, 1)), ("E", (2, 0)), ("red", (0,))}
    assert g.tuples_touching("not-an-element") == ()


def test_closure_memo_returns_same_result():
    s = singleton_structure(TREEISH, "x")
    first = s.closure(["x"])
    second = s.closure(["x"])
    assert first == second == frozenset({"x"})


def test_isomorphism_key_identifies_isomorphic_structures():
    from repro.logic.structures import isomorphism_key

    a = Structure(GRAPH, [0, 1, 2], relations={"E": [(0, 1), (1, 2)], "red": [(0,)]})
    b = Structure(
        GRAPH, ["p", "q", "r"], relations={"E": [("q", "r"), ("r", "p")], "red": [("q",)]}
    )
    assert isomorphism_key(a) == isomorphism_key(b)
    # Breaking the isomorphism (recolouring) must change the key.
    c = Structure(GRAPH, [0, 1, 2], relations={"E": [(0, 1), (1, 2)], "red": [(1,)]})
    assert isomorphism_key(a) != isomorphism_key(c)
    # Beyond the size cap the key falls back to the labelled regime.
    big = Structure(GRAPH, range(10), relations={"E": [(i, i + 1) for i in range(9)]})
    assert isomorphism_key(big, max_size=4)[0] == "labelled"


def test_structure_interner_hash_conses_equal_structures():
    from repro.logic.structures import StructureInterner

    interner = StructureInterner("test_interner_eq")
    first = triangle()
    second = triangle()
    assert interner.intern(first) is first
    assert interner.intern(second) is first
    assert interner.stats.hits == 1 and interner.stats.misses == 1


def test_structure_interner_up_to_isomorphism():
    from repro.logic.structures import StructureInterner

    interner = StructureInterner("test_interner_iso", up_to_isomorphism=True)
    a = Structure(GRAPH, [0, 1], relations={"E": [(0, 1)]})
    b = Structure(GRAPH, ["x", "y"], relations={"E": [("x", "y")]})
    representative = interner.intern(a)
    assert interner.intern(b) is representative


def test_interning_disabled_with_caches_off():
    from repro.logic.structures import StructureInterner
    from repro.perf import caches_disabled

    interner = StructureInterner("test_interner_off")
    with caches_disabled():
        first = triangle()
        second = triangle()
        assert interner.intern(first) is first
        assert interner.intern(second) is second
