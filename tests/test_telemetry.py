"""Tests for :mod:`repro.telemetry` -- the unified observability layer.

Covers the metric primitives and registry rendering, the Prometheus
exposition parser/validator (positive and negative cases -- the validator
is itself a deliverable, used by CI to lint the live ``/v1/metrics``
output), counter monotonicity checking, the engine counter
snapshot/delta/merge pipeline that carries worker-process movement back to
the parent, the per-job :class:`EngineRollup`, the opt-in
:class:`TraceRecorder` with its Chrome trace-event export, and the
structured logging stack (context binding, JSON/Text formatters).
"""

import io
import json
import logging
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    Counter,
    EngineRollup,
    ExpositionError,
    JsonLogFormatter,
    MetricsRegistry,
    TextLogFormatter,
    TraceRecorder,
    chrome_trace,
    counter_regressions,
    current_log_context,
    log_context,
    parse_exposition,
    validate_exposition,
)


class TestMetricPrimitives:
    def test_counter_counts_and_rejects_negative_increments(self):
        counter = Counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value() == 5

    def test_counter_labels_are_independent_series(self):
        counter = Counter("hits_total", "hits", labelnames=("cache",))
        counter.inc(cache="key")
        counter.inc(2, cache="plan")
        assert counter.value(cache="key") == 1
        assert counter.value(cache="plan") == 2
        lines = counter.sample_lines()
        assert 'hits_total{cache="key"} 1' in lines
        assert 'hits_total{cache="plan"} 2' in lines

    def test_counter_rejects_unknown_labels(self):
        counter = Counter("x_total", "x", labelnames=("a",))
        with pytest.raises(ValueError):
            counter.inc(b=1)

    def test_gauge_set_and_callback(self):
        registry = MetricsRegistry()
        manual = registry.gauge("depth", "queue depth")
        manual.set(7)
        assert manual.value() == 7
        state = {"n": 3}
        registry.gauge("live", "live value", callback=lambda: state["n"])
        text = registry.render()
        assert "depth 7" in text
        assert "live 3" in text
        state["n"] = 9
        assert "live 9" in registry.render()

    def test_summary_quantiles_and_lifetime_counts(self):
        registry = MetricsRegistry()
        summary = registry.summary(
            "latency_seconds", "latency", labelnames=("endpoint",), quantiles=(0.5,)
        )
        for value in (0.1, 0.2, 0.3):
            summary.observe(value, endpoint="jobs")
        assert summary.count(endpoint="jobs") == 3
        text = registry.render()
        assert 'latency_seconds{endpoint="jobs",quantile="0.5"} 0.2' in text
        assert 'latency_seconds_count{endpoint="jobs"} 3' in text
        window, count, total = summary.snapshot()[(("endpoint", "jobs"),)]
        assert window == [0.1, 0.2, 0.3]
        assert count == 3
        assert total == pytest.approx(0.6)

    def test_integer_values_render_without_decimal_point(self):
        counter = Counter("n_total", "n")
        counter.inc(2)
        assert counter.sample_lines() == ["n_total 2"]


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a")
        with pytest.raises(ValueError):
            registry.counter("a_total", "again")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad-name", "dashes are not allowed")

    def test_render_announces_every_family_and_lints_clean(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs executed").inc(3)
        registry.gauge("depth", "queue depth").set(1)
        summary = registry.summary("lat", "latency", quantiles=(0.5, 0.99))
        summary.observe(0.25)
        text = registry.render()
        assert "# HELP jobs_total jobs executed" in text
        assert "# TYPE jobs_total counter" in text
        assert "# TYPE lat summary" in text
        assert validate_exposition(text) == []

    def test_label_values_escaped_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", "odd labels", labelnames=("name",))
        tricky = 'quote " slash \\ newline \n end'
        counter.inc(5, name=tricky)
        text = registry.render()
        assert validate_exposition(text) == []
        parsed = parse_exposition(text)
        assert parsed.samples[("odd_total", (("name", tricky),))] == 5


class TestExpositionValidator:
    def test_unannounced_sample_flagged(self):
        problems = validate_exposition("mystery_total 1\n")
        assert any("mystery_total" in problem for problem in problems)

    def test_duplicate_type_announcement_flagged(self):
        text = "# TYPE a counter\n# TYPE a counter\na 1\n"
        assert any("duplicate" in problem for problem in validate_exposition(text))

    def test_negative_counter_flagged(self):
        text = "# HELP a help\n# TYPE a counter\na -1\n"
        assert any("invalid value" in problem for problem in validate_exposition(text))

    def test_quantile_out_of_range_flagged(self):
        text = (
            "# HELP s help\n# TYPE s summary\n"
            's{quantile="1.5"} 3\ns_sum 3\ns_count 1\n'
        )
        assert validate_exposition(text) != []

    def test_summary_missing_sum_count_flagged(self):
        text = '# HELP s help\n# TYPE s summary\ns{quantile="0.5"} 3\n'
        assert validate_exposition(text) != []

    def test_malformed_sample_line_raises_in_parser(self):
        with pytest.raises(ExpositionError):
            parse_exposition("this is not a sample\n")

    def test_counter_regressions_detects_decrease(self):
        head = "# HELP a help\n# TYPE a counter\n"
        assert counter_regressions(head + "a 5\n", head + "a 7\n") == []
        problems = counter_regressions(head + "a 5\n", head + "a 2\n")
        assert len(problems) == 1 and "a" in problems[0]

    def test_counter_regressions_ignores_gauges(self):
        head = "# HELP g help\n# TYPE g gauge\n"
        assert counter_regressions(head + "g 5\n", head + "g 2\n") == []


class TestEngineCounters:
    def test_snapshot_delta_and_worker_merge(self):
        before = telemetry.engine_counters_snapshot()
        telemetry.note_plan_compilation()
        after = telemetry.engine_counters_snapshot()
        delta = telemetry.engine_counters_delta(before, after)
        assert delta["plan_compilations"] == 1
        baseline = telemetry.worker_counters_snapshot()
        telemetry.merge_worker_counters(
            {"plan_compilations": 2, "caches": {"key": {"hits": 3, "misses": 1}}}
        )
        merged = telemetry.worker_counters_snapshot()
        assert merged["jobs"] == baseline["jobs"] + 1
        assert merged["plan_compilations"] == baseline["plan_compilations"] + 2
        assert merged["caches"]["key"]["hits"] >= 3

    def test_merge_is_inert_when_telemetry_disabled(self):
        baseline = telemetry.worker_counters_snapshot()
        with telemetry.telemetry_disabled():
            telemetry.merge_worker_counters({"plan_compilations": 5, "caches": {}})
        assert telemetry.worker_counters_snapshot() == baseline


class TestEngineRollup:
    STATS = {
        "elapsed_seconds": 0.5,
        "configurations_explored": 10,
        "candidates_generated": 40,
        "guard_rejections": 4,
        "duplicate_keys_pruned": 6,
        "plan_rejected_pre_materialization": 2,
        "plan_enumeration_pruned": 3,
        "key_cache_hits": 8,
        "key_cache_misses": 2,
    }

    def test_record_accumulates_and_derives(self):
        rollup = EngineRollup()
        rollup.record(self.STATS)
        rollup.record(self.STATS)
        assert rollup.jobs == 2
        assert rollup.totals["configurations_explored"] == 20
        assert rollup.candidates_pruned == 2 * (4 + 6 + 2 + 3)
        assert rollup.cache_hit_rate == pytest.approx(0.8)
        payload = rollup.as_dict()
        assert payload["jobs"] == 2
        assert payload["engine_seconds"] == pytest.approx(1.0)
        assert payload["candidates_pruned"] == rollup.candidates_pruned

    def test_record_is_inert_for_none_and_when_disabled(self):
        rollup = EngineRollup()
        rollup.record(None)
        with telemetry.telemetry_disabled():
            rollup.record(self.STATS)
        assert rollup.jobs == 0
        assert rollup.as_dict()["configurations_explored"] == 0

    def test_thread_safe_accumulation(self):
        rollup = EngineRollup()
        threads = [
            threading.Thread(target=lambda: [rollup.record(self.STATS) for _ in range(50)])
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert rollup.jobs == 200
        assert rollup.totals["configurations_explored"] == 2000


class TestTraceRecorder:
    def test_spans_events_and_as_dict(self):
        recorder = TraceRecorder()
        with recorder.span("compile", "plan") as args:
            args["plans"] = 4
        recorder.instant("milestone", depth=2)
        payload = recorder.as_dict()
        assert payload["version"] == telemetry.TRACE_FORMAT_VERSION
        assert payload["unit"] == "seconds"
        (span,) = payload["spans"]
        assert span["name"] == "compile" and span["args"] == {"plans": 4}
        assert span["dur"] >= 0
        (event,) = payload["events"]
        assert event["name"] == "milestone" and event["args"] == {"depth": 2}
        assert payload["dropped"] == 0

    def test_span_cap_counts_drops(self):
        recorder = TraceRecorder(max_spans=2)
        for index in range(5):
            recorder.add_span(f"s{index}", "engine", 0.0, 0.1)
        assert len(recorder.spans) == 2
        assert recorder.dropped == 3

    def test_chrome_trace_export_shape(self):
        recorder = TraceRecorder()
        with recorder.span("drive", "engine"):
            pass
        recorder.instant("goal")
        exported = chrome_trace(recorder.as_dict(), pid=7, tid=3)
        assert exported["displayTimeUnit"] == "ms"
        events = exported["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata first
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i"}
        complete = next(event for event in events if event["ph"] == "X")
        assert complete["pid"] == 7 and complete["tid"] == 3
        assert complete["ts"] >= 0 and complete["dur"] >= 0  # microseconds
        json.dumps(exported)  # must be directly serializable for Perfetto


class TestStructuredLogging:
    def _capture(self, formatter):
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.setFormatter(formatter)
        logger = logging.getLogger("repro.test_telemetry")
        logger.setLevel(logging.DEBUG)
        logger.addHandler(handler)
        return logger, handler, stream

    def test_json_lines_carry_context_and_extras(self):
        logger, handler, stream = self._capture(JsonLogFormatter())
        try:
            with log_context(request_id="abc123", fingerprint="deadbeef"):
                logger.info("request", extra={"ms": 12.5})
        finally:
            logger.removeHandler(handler)
        payload = json.loads(stream.getvalue())
        assert payload["message"] == "request"
        assert payload["level"] == "info"
        assert payload["request_id"] == "abc123"
        assert payload["fingerprint"] == "deadbeef"
        assert payload["ms"] == 12.5

    def test_text_formatter_appends_fields(self):
        logger, handler, stream = self._capture(TextLogFormatter())
        try:
            with log_context(request_id="abc123"):
                logger.warning("slow", extra={"ms": 99})
        finally:
            logger.removeHandler(handler)
        line = stream.getvalue().strip()
        assert "warning" in line and "slow" in line
        assert "request_id=abc123" in line and "ms=99" in line

    def test_log_context_nests_and_restores(self):
        assert current_log_context() == {}
        with log_context(request_id="outer"):
            with log_context(fingerprint="inner"):
                assert current_log_context() == {
                    "request_id": "outer",
                    "fingerprint": "inner",
                }
            assert current_log_context() == {"request_id": "outer"}
        assert current_log_context() == {}

    def test_configure_logging_is_idempotent(self):
        stream = io.StringIO()
        logger = telemetry.configure_logging("debug", json_lines=True, stream=stream)
        try:
            telemetry.configure_logging("debug", json_lines=True, stream=stream)
            ours = [h for h in logger.handlers if getattr(h, "_repro_telemetry", False)]
            assert len(ours) == 1  # reconfigure replaces, never stacks
            telemetry.get_logger("serve").debug("hello")
            assert json.loads(stream.getvalue())["message"] == "hello"
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_telemetry", False):
                    logger.removeHandler(handler)

    def test_configure_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            telemetry.configure_logging("loud")
