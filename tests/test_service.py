"""Tests for the batch verification service (specs, store, runner)."""

import json

import pytest

from repro.datavalues import DataValuedTheory, NaturalsWithEquality
from repro.library import (
    odd_red_cycle_system,
    self_loop_required_system,
    triangle_system,
)
from repro.relational import (
    COLORED_GRAPH_SCHEMA,
    GRAPH_SCHEMA,
    AllDatabasesTheory,
    HomTheory,
    clique_template,
)
from repro.service import (
    BatchRunner,
    JobResult,
    ResultStore,
    VerificationJob,
    execute_job,
    run_batch,
    theory_from_spec,
)
from repro.systems.dds import DatabaseDrivenSystem
from repro.trees import TreeRunTheory, universal_automaton
from repro.words import NFA, WordRunTheory, word_schema


def _simple_word_system():
    return DatabaseDrivenSystem.build(
        schema=word_schema(["a", "b"]),
        registers=["x"],
        states=["p", "q"],
        initial="p",
        accepting="q",
        transitions=[("p", "label_a(x_new)", "q")],
    )


def _ab_nfa():
    return NFA.make(
        ["p", "q"],
        ["a", "b"],
        [("p", "a", "p"), ("p", "b", "q"), ("q", "b", "q")],
        ["p"],
        ["q"],
    )


def _all_theory_jobs():
    """One job per serializable theory kind."""
    data_system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA.extend(relations={"sim": 2}),
        registers=["x"],
        states=["p", "q"],
        initial="p",
        accepting="q",
        transitions=[("p", "sim(x_old, x_new)", "q")],
    )
    tree_system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA,
        registers=["x"],
        states=["p", "q"],
        initial="p",
        accepting="q",
        transitions=[("p", "x_old = x_new", "q")],
    )
    return [
        VerificationJob(
            triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA), label="all"
        ),
        VerificationJob(triangle_system(), HomTheory(clique_template(2)), label="hom"),
        VerificationJob(_simple_word_system(), WordRunTheory(_ab_nfa()), label="word"),
        VerificationJob(
            tree_system.with_schema(
                TreeRunTheory(universal_automaton(["a", "b"])).schema
            ),
            TreeRunTheory(universal_automaton(["a", "b"])),
            label="tree",
        ),
        VerificationJob(
            data_system,
            DataValuedTheory(AllDatabasesTheory(GRAPH_SCHEMA), NaturalsWithEquality()),
            label="data",
        ),
    ]


class TestSpecs:
    def test_job_spec_round_trip_all_theory_kinds(self):
        for job in _all_theory_jobs():
            wire = json.loads(json.dumps(job.to_spec()))
            rebuilt = VerificationJob.from_spec(wire)
            assert rebuilt.fingerprint == job.fingerprint, job.label
            assert rebuilt.to_spec() == job.to_spec(), job.label

    def test_theory_from_spec_dispatch(self):
        theory = HomTheory(clique_template(3))
        rebuilt = theory_from_spec(json.loads(json.dumps(theory.to_spec())))
        assert isinstance(rebuilt, HomTheory)
        assert rebuilt.template == theory.template

    def test_theory_from_spec_unknown_kind(self):
        from repro.errors import TheoryError

        with pytest.raises(TheoryError):
            theory_from_spec({"kind": "no_such_theory"})

    def test_fingerprint_ignores_label(self):
        theory = AllDatabasesTheory(GRAPH_SCHEMA)
        a = VerificationJob(triangle_system(), theory, label="one")
        b = VerificationJob(triangle_system(), theory, label="two")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_sensitive_to_inputs(self):
        theory = AllDatabasesTheory(GRAPH_SCHEMA)
        base = VerificationJob(triangle_system(), theory)
        assert (
            VerificationJob(triangle_system(), theory, strategy="dfs").fingerprint
            != base.fingerprint
        )
        assert (
            VerificationJob(
                triangle_system(), theory, max_configurations=123
            ).fingerprint
            != base.fingerprint
        )
        assert (
            VerificationJob(self_loop_required_system(), theory).fingerprint
            != base.fingerprint
        )

    def test_system_spec_round_trip(self):
        system = odd_red_cycle_system()
        rebuilt = DatabaseDrivenSystem.from_spec(
            json.loads(json.dumps(system.to_spec()))
        )
        assert rebuilt.to_spec() == system.to_spec()
        assert rebuilt.states == system.states
        assert rebuilt.registers == system.registers
        assert rebuilt.initial_states == system.initial_states
        assert rebuilt.accepting_states == system.accepting_states


class TestExecuteJob:
    def test_verdict_matches_direct_solver(self):
        from repro import EmptinessSolver

        job = VerificationJob(triangle_system(), HomTheory(clique_template(2)))
        result = execute_job(job)
        direct = EmptinessSolver(HomTheory(clique_template(2))).check(triangle_system())
        assert result.ok
        assert result.nonempty == direct.nonempty
        assert result.exhausted == direct.exhausted
        assert result.fingerprint == job.fingerprint

    def test_error_capture(self):
        # Schema mismatch: system over the colored schema, theory over graphs.
        job = VerificationJob(
            odd_red_cycle_system(), AllDatabasesTheory(GRAPH_SCHEMA)
        )
        result = execute_job(job)
        assert not result.ok
        assert result.nonempty is None
        assert "SolverError" in result.error


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        job = VerificationJob(triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA))
        result = execute_job(job)
        with ResultStore(tmp_path / "store.sqlite") as store:
            assert store.get(job.fingerprint) is None
            store.put(job, result)
            cached = store.get(job.fingerprint)
            assert cached is not None
            assert cached.cached
            assert cached.nonempty == result.nonempty
            assert cached.exhausted == result.exhausted
            assert cached.statistics == result.statistics
            assert job.fingerprint in store
            assert len(store) == 1

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "store.sqlite"
        job = VerificationJob(triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA))
        with ResultStore(path) as store:
            store.put(job, execute_job(job))
        with ResultStore(path) as store:
            assert store.get(job.fingerprint) is not None

    def test_rejects_errored_results(self):
        job = VerificationJob(triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA))
        errored = JobResult(fingerprint=job.fingerprint, error="boom")
        with ResultStore() as store:
            with pytest.raises(ValueError):
                store.put(job, errored)

    def test_export_and_clear(self, tmp_path):
        job = VerificationJob(triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA))
        with ResultStore() as store:
            store.put(job, execute_job(job))
            export = store.export()
            assert export["count"] == 1
            entry = export["results"][0]
            assert entry["fingerprint"] == job.fingerprint
            assert entry["job_spec"]["strategy"] == "bfs"
            out = tmp_path / "dump.json"
            store.export_json(out)
            assert json.loads(out.read_text())["count"] == 1
            assert store.clear() == 1
            assert len(store) == 0


class TestBatchRunner:
    def test_serial_and_parallel_agree(self):
        jobs = _all_theory_jobs()
        serial = BatchRunner(workers=1).run(jobs)
        parallel = BatchRunner(workers=2).run(jobs)
        assert serial.verdicts == parallel.verdicts
        assert not serial.errors and not parallel.errors
        assert [r.fingerprint for r in serial.results] == [
            j.fingerprint for j in jobs
        ]

    def test_warm_cache_round(self):
        jobs = _all_theory_jobs()
        with ResultStore() as store:
            cold = BatchRunner(store=store, workers=1).run(jobs)
            assert cold.executed == len(jobs) and cold.cache_hits == 0
            warm = BatchRunner(store=store, workers=1).run(jobs)
            assert warm.executed == 0 and warm.cache_hits == len(jobs)
            assert warm.verdicts == cold.verdicts
            assert all(r.cached for r in warm.results)

    def test_errors_do_not_poison_store(self):
        good = VerificationJob(triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA))
        bad = VerificationJob(odd_red_cycle_system(), AllDatabasesTheory(GRAPH_SCHEMA))
        with ResultStore() as store:
            report = BatchRunner(store=store).run([good, bad])
            assert len(report.errors) == 1
            assert len(store) == 1
            assert bad.fingerprint not in store

    def test_report_shapes(self):
        report = run_batch(
            [VerificationJob(triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA))]
        )
        payload = report.as_dict()
        assert payload["jobs"] == 1
        assert payload["verdict_counts"]["nonempty"] == 1
        assert payload["results"][0]["nonempty"] is True

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            BatchRunner(workers=0)

    def test_spawn_is_default_and_fork_overridable(self):
        # Spawn is the pool default (the HTTP server runs batches off
        # executor threads, where forking is unsafe); fork stays available
        # for single-threaded batch scripts.
        assert BatchRunner()._start_method == "spawn"
        jobs = _all_theory_jobs()[:3]
        spawned = BatchRunner(workers=2, start_method="spawn").run(jobs)
        forked = BatchRunner(workers=2, start_method="fork").run(jobs)
        assert spawned.verdicts == forked.verdicts
        assert not spawned.errors and not forked.errors

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ValueError):
            BatchRunner(start_method="teleport")


class TestColoredSpecRoundTrip:
    def test_colored_schema_theory(self):
        theory = AllDatabasesTheory(COLORED_GRAPH_SCHEMA)
        rebuilt = theory_from_spec(theory.to_spec())
        assert rebuilt.schema == theory.schema
