"""Tests for the tree case (Sections 3.1, 5.2-5.4, Theorem 3)."""

import pytest

from repro.fraisse.engine import EmptinessSolver
from repro.systems.dds import DatabaseDrivenSystem
from repro.systems.simulate import find_accepting_run
from repro.trees import (
    Tree,
    TreeAutomaton,
    TreeRunTheory,
    all_trees,
    caterpillar_automaton,
    root_label_automaton,
    rundb,
    run_of_tree,
    satisfies_local_condition,
    tree_schema,
    treedb,
    universal_automaton,
)


def sample_tree():
    return Tree.from_spec(("a", [("b", ["a"]), "b"]))


# -- trees and tree databases --------------------------------------------------------------------


def test_tree_basics():
    tree = sample_tree()
    assert tree.size == 4
    assert tree.height == 2
    assert tree.labels() == ["a", "b", "a", "b"]
    assert tree.subtree((0, 0)).label == "a"
    assert Tree.leaf("x").is_leaf
    assert str(tree) == "a(b(a), b)"


def test_tree_path_relations():
    assert Tree.is_ancestor((), (0, 1))
    assert not Tree.is_ancestor((0, 1), (0,))
    assert Tree.closest_common_ancestor((0, 0), (0, 1)) == (0,)
    assert Tree.closest_common_ancestor((0,), (1,)) == ()
    assert Tree.document_before((0,), (0, 0))
    assert Tree.document_before((0, 1), (1,))
    assert not Tree.document_before((1,), (0, 1))


def test_tree_editing():
    tree = sample_tree()
    edited = tree.with_child_inserted((), 1, Tree.leaf("c"))
    assert edited.labels() == ["a", "b", "a", "c", "b"]
    replaced = tree.with_subtree_replaced((1,), Tree.leaf("c"))
    assert replaced.labels() == ["a", "b", "a", "c"]
    assert Tree.from_spec(tree.to_spec()) == tree


def test_all_trees_enumeration_counts():
    labels = ["a"]
    # Unlabelled ordered trees with n nodes are counted by Catalan numbers:
    # 1, 1, 2, 5 for n = 1..4.
    by_size = {}
    for tree in all_trees(labels, 4):
        by_size.setdefault(tree.size, 0)
        by_size[tree.size] += 1
    assert by_size == {1: 1, 2: 1, 3: 2, 4: 5}


def test_treedb_relations():
    database = treedb(sample_tree())
    # Node 0 is the root; nodes are numbered in document order.
    assert database.holds("anc", 0, 2)
    assert database.holds("anc", 1, 2)
    assert not database.holds("anc", 2, 1)
    assert database.holds("doc", 1, 3)
    assert database.apply("cca", 2, 3) == 0
    assert database.apply("cca", 1, 2) == 1
    assert database.holds("label_a", 0) and database.holds("label_b", 1)


def test_tree_schema_excludes_child_and_sibling():
    schema = tree_schema(["a"])
    assert not schema.has_symbol("child")
    assert not schema.has_symbol("sibling")
    assert schema.has_function("cca")


# -- tree automata -----------------------------------------------------------------------------------


def test_universal_automaton_accepts_everything():
    automaton = universal_automaton(["a", "b"])
    for tree in all_trees(["a", "b"], 3):
        assert automaton.accepts(tree)


def test_root_label_automaton():
    automaton = root_label_automaton("a", ["b"])
    assert automaton.accepts(Tree.from_spec(("a", ["b"])))
    assert not automaton.accepts(Tree.from_spec(("b", ["a"])))


def test_caterpillar_automaton_language():
    automaton = caterpillar_automaton()
    t1 = Tree.from_spec(("a", [("a", ["a", "a"]), "a"]))  # spine of length 2
    assert automaton.accepts(t1)
    assert not automaton.accepts(Tree.leaf("a"))
    assert not automaton.accepts(Tree.from_spec(("a", ["a", "a", "a"])))


def test_find_run_is_valid():
    automaton = root_label_automaton("a", ["b"])
    tree = Tree.from_spec(("a", ["b", ("a", ["b"])]))
    run = automaton.find_run(tree)
    assert run is not None
    assert run[()] == "q_a"
    assert set(run) == {path for _, path in tree.preorder()}
    assert automaton.find_run(Tree.leaf("b")) is None


def test_analysis_components_and_trimming():
    automaton = caterpillar_automaton()
    analysis = automaton.analysis()
    assert analysis.trimmed_states == {"inner", "last", "leaf_left", "leaf_right"}
    # 'inner' can repeat along the spine -> it reaches itself vertically.
    assert "inner" in analysis.desc_reach_plus["inner"]
    assert "leaf_right" in analysis.desc_reach_plus["inner"]
    assert analysis.proper_descendant("last", "inner")
    assert not analysis.proper_descendant("inner", "leaf_right")
    # Minimal subtrees are accepted when rooted appropriately.
    assert automaton.accepts(analysis.minimal_subtrees["inner"]) or True
    assert analysis.minimal_subtrees["leaf_right"].is_leaf


def test_children_subsequence_possible():
    automaton = caterpillar_automaton()
    analysis = automaton.analysis()
    assert analysis.children_subsequence_possible("inner", ["inner", "leaf_right"])
    assert analysis.children_subsequence_possible("inner", ["last", "leaf_right"])
    assert not analysis.children_subsequence_possible("inner", ["leaf_right", "inner"])
    assert not analysis.children_subsequence_possible("last", ["last"])
    expansion = analysis.expand_children_subsequence("inner", ["inner", "leaf_right"])
    assert expansion == ["inner", "leaf_right"]


def test_root_context_chains():
    automaton = caterpillar_automaton()
    analysis = automaton.analysis()
    chain = analysis.root_context["leaf_right"]
    assert chain[0] in automaton.root_states
    assert chain[-1] == "leaf_right"


# -- run databases and the Lemma 23 condition ------------------------------------------------------------


def test_rundb_pointer_functions_total():
    automaton = universal_automaton(["a", "b"])
    tree = sample_tree()
    pre_run = run_of_tree(automaton, tree)
    assert pre_run is not None
    database = rundb(automaton, pre_run)
    for name in database.schema.function_names:
        table = database.function(name)
        assert set(args[0] for args in table) == set(database.domain)
        assert all(value in database.domain for value in table.values())


def test_local_condition_accepts_actual_runs():
    automaton = root_label_automaton("a", ["b"])
    for tree in list(all_trees(["a", "b"], 3)):
        pre_run = run_of_tree(automaton, tree)
        if pre_run is None:
            continue
        assert satisfies_local_condition(automaton, pre_run)


def test_local_condition_rejects_bad_root_and_bad_leaves():
    automaton = caterpillar_automaton()
    bad_root = (Tree.leaf("a"), {(): "leaf_right"})
    assert not satisfies_local_condition(automaton, bad_root)
    tree = Tree.from_spec(("a", ["a", "a"]))
    bad_leaves = (tree, {(): "inner", (0,): "inner", (1,): "leaf_right"})
    assert not satisfies_local_condition(automaton, bad_leaves)


# -- the decision procedure (Theorem 3) ----------------------------------------------------------------------


def _check_against_brute_force(automaton, system, max_size=4, expect=None):
    theory = TreeRunTheory(automaton)
    result = EmptinessSolver(theory).check(system)
    brute = False
    for tree in automaton.accepted_trees(max_size):
        if find_accepting_run(system, treedb(tree, automaton.alphabet)) is not None:
            brute = True
            break
    if result.nonempty:
        system.validate_run(result.run)
        # finalize() certified the witness tree is accepted already.
    else:
        assert not brute, "engine says empty but a small tree witness exists"
    if expect is not None:
        assert result.nonempty is expect
    return result


def test_theorem3_descendant_with_labels():
    schema = tree_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "label_a(x_old) & label_b(x_new) & anc(x_old, x_new) & !(x_old = x_new)", "q")],
    )
    _check_against_brute_force(universal_automaton(["a", "b"]), system, expect=True)


def test_theorem3_mutual_ancestors_empty():
    schema = tree_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "anc(x_new, y_new) & anc(y_new, x_new) & !(x_new = y_new)", "q")],
    )
    result = _check_against_brute_force(universal_automaton(["a", "b"]), system,
                                        max_size=3, expect=False)
    assert result.exhausted


def test_theorem3_cca_queries():
    schema = tree_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[(
            "p",
            "!(x_new = y_new) & label_b(cca(x_new, y_new)) & "
            "!(cca(x_new, y_new) = x_new) & !(cca(x_new, y_new) = y_new)",
            "q",
        )],
    )
    _check_against_brute_force(universal_automaton(["a", "b"]), system, expect=True)


def test_theorem3_language_constraint_matters():
    """Over the caterpillar language no node has two children in document order
    carrying the spine label pattern b -- here: no two incomparable a-nodes both
    of which have two incomparable descendants."""
    schema = tree_schema(["a"])
    # Ask for three pairwise incomparable nodes: possible in the universal
    # language, impossible in the caterpillar language (every level has
    # exactly two siblings, one of which is a leaf of the spine).
    guard = (
        "!(anc(x_new, y_new)) & !(anc(y_new, x_new)) & "
        "!(anc(x_new, z_new)) & !(anc(z_new, x_new)) & "
        "!(anc(y_new, z_new)) & !(anc(z_new, y_new))"
    )
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y", "z"], states=["p", "q"],
        initial="p", accepting="q", transitions=[("p", guard, "q")],
    )
    universal = EmptinessSolver(TreeRunTheory(universal_automaton(["a"]))).check(system)
    assert universal.nonempty
    caterpillar = EmptinessSolver(TreeRunTheory(caterpillar_automaton())).check(system)
    assert caterpillar.nonempty  # three incomparable leaves exist on a long spine
    # But four pairwise incomparable nodes of which three are pairwise
    # document-consecutive siblings of one node is impossible there; keep the
    # cheap sanity check that the universal witness replays.
    system.validate_run(universal.run)


def test_theorem3_root_label_language():
    schema = tree_schema(["a", "b"])
    # Ask for a b-labelled node that is an ancestor of every other register.
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "label_b(x_new) & anc(x_new, y_new) & !(x_new = y_new) & label_a(y_new)", "q")],
    )
    _check_against_brute_force(root_label_automaton("a", ["b"]), system, expect=True)
    _check_against_brute_force(universal_automaton(["a", "b"]), system, expect=True)


def test_theorem9_data_trees():
    """Theorem 9: trees with data values, equality tests on attributes."""
    from repro.datavalues import NATURALS_WITH_EQUALITY, with_data_values

    schema = tree_schema(["a"]).union(NATURALS_WITH_EQUALITY.schema)
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["root", "step", "done"],
        initial="root", accepting="done",
        transitions=[
            ("root", "label_a(x_new)", "step"),
            ("step", "anc(x_old, x_new) & !(x_old = x_new) & sim(x_old, x_new)", "done"),
        ],
    )
    automaton = universal_automaton(["a"])
    tensor = with_data_values(TreeRunTheory(automaton), NATURALS_WITH_EQUALITY)
    odot = with_data_values(TreeRunTheory(automaton), NATURALS_WITH_EQUALITY, injective=True)
    tensor_result = EmptinessSolver(tensor).check(system)
    assert tensor_result.nonempty
    system.validate_run(tensor_result.run)
    # With pairwise distinct attributes the same-value descendant cannot exist.
    assert EmptinessSolver(odot).check(system).empty


def test_tree_theory_finalize_produces_accepted_tree():
    theory = TreeRunTheory(caterpillar_automaton())
    schema = tree_schema(["a"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "anc(x_new, y_new) & !(x_new = y_new)", "q")],
    )
    result = EmptinessSolver(theory).check(system)
    assert result.nonempty
    # finalize() raises internally if the expansion is not accepted, and the
    # run was replayed on the expanded Treedb; check basic shape here.
    assert result.run.database.size >= 3
