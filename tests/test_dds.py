"""Unit tests for database-driven systems, simulation and Fact 2 compilation."""

import pytest

from repro.errors import RunError, SystemError_
from repro.library import (
    odd_red_cycle_system,
    red_path_system,
    self_loop_required_system,
    triangle_system,
)
from repro.logic.parser import parse_formula
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.relational.csp import (
    COLORED_GRAPH_SCHEMA,
    GRAPH_SCHEMA,
    cycle_graph,
    example_graph_g,
    path_graph,
)
from repro.systems.dds import Configuration, DatabaseDrivenSystem, Run, Transition, new, old, split_register_variable
from repro.systems.existential import (
    auxiliary_register_count,
    compile_existential_guards,
)
from repro.systems.simulate import (
    count_reachable_configurations,
    find_accepting_run,
    has_accepting_run,
)


def test_old_new_helpers():
    assert old("x") == "x_old" and new("x") == "x_new"
    assert split_register_variable("x_old") == ("x", "old")
    assert split_register_variable("acc_new") == ("acc", "new")
    with pytest.raises(SystemError_):
        split_register_variable("x")


def test_build_validates_states_and_registers():
    with pytest.raises(SystemError_):
        DatabaseDrivenSystem.build(
            schema=GRAPH_SCHEMA, registers=["x"], states=["a"], initial="a",
            accepting="missing", transitions=[],
        )
    with pytest.raises(SystemError_):
        DatabaseDrivenSystem.build(
            schema=GRAPH_SCHEMA, registers=["x"], states=["a"], initial="a",
            accepting="a", transitions=[("a", "E(y_old, y_new)", "a")],
        )
    with pytest.raises(SystemError_):
        DatabaseDrivenSystem.build(
            schema=GRAPH_SCHEMA, registers=[], states=["a"], initial="a",
            accepting="a", transitions=[],
        )


def test_existential_guard_rejected_unless_allowed():
    with pytest.raises(SystemError_):
        DatabaseDrivenSystem.build(
            schema=GRAPH_SCHEMA, registers=["x"], states=["a", "b"], initial="a",
            accepting="b", transitions=[("a", "exists u . E(x_old, u)", "b")],
        )
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["a", "b"], initial="a",
        accepting="b", transitions=[("a", "exists u . E(x_old, u)", "b")],
        allow_existential_guards=True,
    )
    assert len(system.transitions) == 1


def test_example1_accepting_run_on_example_graph():
    system = odd_red_cycle_system()
    graph = example_graph_g()
    run = find_accepting_run(system, graph)
    assert run is not None
    assert run.final_state == "end"
    system.validate_run(run)
    # The accepted cycle has odd length: the run visits q0/q1 alternately and
    # ends right after q1, so the number of moves is odd.
    moves = sum(1 for state, _ in run.steps if state in ("q0", "q1")) - 1
    assert moves % 2 == 1


def test_example1_rejects_even_red_cycle_only_graph():
    system = odd_red_cycle_system()
    even_cycle = cycle_graph(4, red=True)
    assert not has_accepting_run(system, even_cycle)
    odd_cycle = cycle_graph(3, red=True)
    assert has_accepting_run(system, odd_cycle)
    white_odd_cycle = cycle_graph(3, red=False)
    assert not has_accepting_run(system, white_odd_cycle)


def test_run_validation_errors():
    system = odd_red_cycle_system()
    graph = cycle_graph(3, red=True)
    run = Run(database=graph, steps=[("q0", {"x": 0, "y": 0})])
    with pytest.raises(RunError):
        system.validate_run(run)  # not an initial state
    bad = Run(database=graph, steps=[("start", {"x": 0})])
    with pytest.raises(RunError):
        system.validate_run(bad)  # missing register
    empty = Run(database=graph, steps=[])
    with pytest.raises(RunError):
        system.validate_run(empty)


def test_is_transition_and_configurations():
    system = odd_red_cycle_system()
    graph = cycle_graph(3, red=True)
    before = Configuration.make(graph, "start", {"x": 0, "y": 0})
    after = Configuration.make(graph, "q0", {"x": 0, "y": 0})
    assert system.is_transition(before, after) is not None
    wrong = Configuration.make(graph, "q0", {"x": 0, "y": 1})
    assert system.is_transition(before, wrong) is None


def test_simulation_respects_max_steps():
    system = red_path_system(3)
    long_path = path_graph(5, red=True)
    assert has_accepting_run(system, long_path)
    assert not has_accepting_run(system, long_path, max_steps=2)


def test_red_path_system_needs_red_nodes():
    system = red_path_system(2)
    assert not has_accepting_run(system, path_graph(5, red=False))


def test_count_reachable_configurations():
    system = self_loop_required_system()
    loop = Structure(GRAPH_SCHEMA, [0], relations={"E": {(0, 0)}})
    no_loop = Structure(GRAPH_SCHEMA, [0, 1], relations={"E": {(0, 1)}})
    assert count_reachable_configurations(system, loop) >= 2
    assert has_accepting_run(system, loop)
    assert not has_accepting_run(system, no_loop)


def test_triangle_system_semantics():
    system = triangle_system()
    triangle = Structure(GRAPH_SCHEMA, [0, 1, 2], relations={"E": {(0, 1), (1, 2), (2, 0)}})
    square = cycle_graph(4, schema=GRAPH_SCHEMA)
    assert has_accepting_run(system, triangle)
    assert not has_accepting_run(system, square)


def test_renamed_states_and_with_schema():
    system = odd_red_cycle_system()
    renamed = system.renamed_states("A_")
    assert "A_start" in renamed.states
    assert renamed.initial_states == frozenset({"A_start"})
    extended = system.with_schema(COLORED_GRAPH_SCHEMA.extend(relations={"blue": 1}))
    assert extended.schema.has_relation("blue")


def test_describe_contains_transitions():
    text = odd_red_cycle_system().describe()
    assert "start" in text and "E(" in text


# -- Fact 2: existential guard compilation ----------------------------------------------------------


def test_fact2_compilation_preserves_emptiness_on_fixed_databases():
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["a", "b"], initial="a",
        accepting="b",
        transitions=[("a", "x_old = x_new & (exists u . E(x_old, u) & red(u))",
                      "b")],
        allow_existential_guards=True,
    )
    compiled = compile_existential_guards(system)
    assert all(t.guard.is_quantifier_free() for t in compiled.transitions)
    assert len(compiled.registers) == len(system.registers) + 1

    schema = Schema.relational(E=2, red=1)
    yes = Structure(schema, [0, 1], relations={"E": {(0, 1)}, "red": {(1,)}})
    no = Structure(schema, [0, 1], relations={"E": {(0, 1)}, "red": set()})
    sys_red = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["a", "b"], initial="a", accepting="b",
        transitions=[("a", "x_old = x_new & (exists u . E(x_old, u) & red(u))", "b")],
        allow_existential_guards=True,
    )
    compiled_red = compile_existential_guards(sys_red)
    assert has_accepting_run(sys_red, yes) == has_accepting_run(compiled_red, yes) == True
    assert has_accepting_run(sys_red, no) == has_accepting_run(compiled_red, no) == False


def test_fact2_distinct_quantifier_compiles_to_inequalities():
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["a", "b"], initial="a",
        accepting="b",
        transitions=[("a", "exists!= u, v . E(u, v)", "b")],
        allow_existential_guards=True,
    )
    compiled = compile_existential_guards(system)
    assert auxiliary_register_count(system) == 2
    loop_only = Structure(GRAPH_SCHEMA, [0], relations={"E": {(0, 0)}})
    two_nodes = Structure(GRAPH_SCHEMA, [0, 1], relations={"E": {(0, 1)}})
    assert not has_accepting_run(compiled, loop_only)
    assert has_accepting_run(compiled, two_nodes)


def test_fact2_rejects_negated_existential():
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["a", "b"], initial="a",
        accepting="b",
        transitions=[("a", "!(exists u . E(x_old, u))", "b")],
        allow_existential_guards=True,
    )
    with pytest.raises(SystemError_):
        compile_existential_guards(system)


def test_fact2_quantifier_free_guard_untouched():
    system = odd_red_cycle_system()
    compiled = compile_existential_guards(system)
    assert auxiliary_register_count(system) == 0
    assert compiled.registers == system.registers
