"""Tests for the seeded random workload generator."""

import json

import pytest

from repro.service import BatchRunner, VerificationJob
from repro.workloads import FAMILIES, generate_jobs


class TestDeterminism:
    def test_same_seed_same_fingerprints(self):
        first = generate_jobs(15, seed=11)
        second = generate_jobs(15, seed=11)
        assert [j.fingerprint for j in first] == [j.fingerprint for j in second]

    def test_different_seeds_differ(self):
        first = generate_jobs(10, seed=1)
        second = generate_jobs(10, seed=2)
        assert [j.fingerprint for j in first] != [j.fingerprint for j in second]

    def test_heavy_profile_deterministic(self):
        first = generate_jobs(8, seed=3, profile="heavy")
        second = generate_jobs(8, seed=3, profile="heavy")
        assert [j.fingerprint for j in first] == [j.fingerprint for j in second]


class TestGeneration:
    def test_families_round_robin(self):
        jobs = generate_jobs(len(FAMILIES) * 2, seed=0)
        families = [job.label.rsplit("-", 1)[0] for job in jobs]
        assert families == list(FAMILIES) * 2

    def test_family_subset(self):
        jobs = generate_jobs(6, seed=0, families=["relational", "hom"])
        assert all(
            job.label.startswith(("relational", "hom")) for job in jobs
        )

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_jobs(3, families=["quantum"])
        with pytest.raises(ValueError):
            generate_jobs(3, families=[])
        with pytest.raises(ValueError):
            generate_jobs(3, profile="medium")

    def test_max_configurations_override(self):
        jobs = generate_jobs(5, seed=0, max_configurations=321)
        assert all(job.max_configurations == 321 for job in jobs)

    def test_specs_survive_wire_format(self):
        # Every generated job must round-trip through JSON with a stable
        # fingerprint -- the property the parallel runner relies on.
        for job in generate_jobs(len(FAMILIES), seed=5):
            rebuilt = VerificationJob.from_spec(json.loads(json.dumps(job.to_spec())))
            assert rebuilt.fingerprint == job.fingerprint, job.label


class TestExecution:
    def test_light_batch_runs_clean(self):
        report = BatchRunner(workers=1, timeout_seconds=120).run(
            generate_jobs(10, seed=0)
        )
        assert not report.errors
        counts = report.verdict_counts()
        assert counts["nonempty"] + counts["empty"] + counts["inconclusive"] == 10

    def test_cap_hits_reported_inconclusive_not_empty(self):
        # With a tiny configuration cap many searches stop before exhausting
        # the abstract space; those must never be counted as "empty".
        report = BatchRunner(workers=1).run(
            generate_jobs(10, seed=0, max_configurations=3)
        )
        counts = report.verdict_counts()
        assert counts["inconclusive"] > 0
        for result in report.results:
            if result.ok and not result.nonempty and not result.exhausted:
                assert counts["empty"] < 10


class TestStressFamilies:
    def test_stress_families_generate_deterministically(self):
        from repro.workloads import STRESS_FAMILIES

        first = generate_jobs(4, seed=5, families=STRESS_FAMILIES)
        second = generate_jobs(4, seed=5, families=STRESS_FAMILIES)
        assert [j.fingerprint for j in first] == [j.fingerprint for j in second]
        labels = [job.label.rsplit("-", 1)[0] for job in first]
        assert labels == ["hom_deep", "tree_wide", "hom_deep", "tree_wide"]

    def test_stress_jobs_survive_wire_format(self):
        from repro.workloads import STRESS_FAMILIES

        for job in generate_jobs(2, seed=5, families=STRESS_FAMILIES):
            rebuilt = VerificationJob.from_spec(
                json.loads(json.dumps(job.to_spec()))
            )
            assert rebuilt.fingerprint == job.fingerprint

    def test_stress_families_not_in_default_mix(self):
        from repro.workloads import STRESS_FAMILIES

        assert not set(STRESS_FAMILIES) & set(FAMILIES)
        jobs = generate_jobs(len(FAMILIES), seed=0)
        assert all(
            not job.label.startswith(("hom_deep", "tree_wide")) for job in jobs
        )

    def test_stress_workloads_expose_fixed_instances(self):
        from repro.workloads import stress_workloads

        named = stress_workloads()
        assert set(named) == {"stress_hom_deep", "stress_tree_wide"}
        for workload in named.values():
            system = workload["system"]()
            theory = workload["theory"]()
            assert system.schema.is_subschema_of(theory.schema)
            assert workload["max_configurations"] > 0

    def test_hom_deep_runs_end_to_end(self):
        """One small adversarial HOM job decides identically on both paths."""
        from repro.fraisse.engine import EmptinessSolver
        from repro.perf import caches_disabled

        job = generate_jobs(1, seed=5, families=["hom_deep"])[0]
        fast = EmptinessSolver(
            job.theory, max_configurations=job.max_configurations
        ).check(job.system)
        with caches_disabled():
            legacy = EmptinessSolver(
                job.theory, max_configurations=job.max_configurations
            ).check(job.system)
        assert fast.nonempty == legacy.nonempty


class TestDeprecatedWireShims:
    """repro.workloads kept jobs_to_wire/post_jobs as warning shims."""

    def test_jobs_to_wire_warns_and_delegates(self):
        from repro.service.client import jobs_to_wire as canonical
        from repro.workloads import jobs_to_wire

        jobs = generate_jobs(2, seed=13)
        with pytest.warns(DeprecationWarning, match="repro.service.client"):
            wire = jobs_to_wire(jobs)
        assert wire == canonical(jobs)

    def test_post_jobs_warns(self):
        from repro.workloads import post_jobs

        with pytest.warns(DeprecationWarning, match="repro.service.client"):
            with pytest.raises(OSError):
                post_jobs("http://127.0.0.1:9", generate_jobs(1, seed=13))
