"""Tests for the engine-independent witness certificate subsystem.

The contract under test: every nonempty verdict can export a persisted
certificate that a validator re-checks *without the engine* -- guards
replayed along the run, the witness database's theory membership
re-derived from logic primitives, the accepting evidence re-verified --
and corrupted certificates are rejected, not silently accepted.
"""

import copy
import dataclasses
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro import AllDatabasesTheory, EmptinessSolver, HomTheory, clique_template
from repro.certify import (
    CERTIFICATE_FORMAT,
    CertificateError,
    build_certificate,
    decode_certificate,
    encode_certificate,
    render_certificate,
    validate_certificate,
    validate_encoded,
)
from repro.library import triangle_system
from repro.relational.csp import GRAPH_SCHEMA
from repro.service.jobs import execute_job
from repro.workloads import generate_jobs

CERTIFY_SOURCES = sorted((Path(__file__).resolve().parents[1] / "src" / "repro" / "certify").glob("*.py"))


def _triangle():
    system = triangle_system()
    theory = AllDatabasesTheory(GRAPH_SCHEMA)
    result = EmptinessSolver(theory).check(system)
    assert result.nonempty
    return system, theory, result


def _hom_triangle():
    system = triangle_system()
    theory = HomTheory(clique_template(3))
    result = EmptinessSolver(theory).check(system)
    assert result.nonempty
    return system, theory, result


class TestFormat:
    def test_build_encode_decode_round_trip(self):
        system, theory, result = _triangle()
        certificate = build_certificate(system, theory, result)
        assert certificate["format"] == CERTIFICATE_FORMAT
        decoded = decode_certificate(encode_certificate(certificate))
        assert decoded == certificate
        assert render_certificate(decoded) == render_certificate(certificate)

    def test_canonical_rendering_is_deterministic(self):
        # Same witness -> byte-identical canonical text, independent of
        # dict construction order: the CLI/HTTP agreement guarantee.
        system, theory, result = _triangle()
        a = render_certificate(build_certificate(system, theory, result))
        b = render_certificate(
            dict(reversed(list(build_certificate(system, theory, result).items())))
        )
        assert a == b

    def test_empty_result_refused(self):
        system, theory, result = _triangle()
        empty = dataclasses.replace(result, nonempty=False, run=None)
        with pytest.raises(CertificateError, match="nonempty"):
            build_certificate(system, theory, empty)

    def test_decode_rejects_garbage(self):
        for bad in ("", "not-base64!!", "aGVsbG8="):  # empty, bad b64, not zlib
            with pytest.raises(CertificateError):
                decode_certificate(bad)


class TestSeededWorkloads:
    def test_every_nonempty_verdict_validates_engine_free(self):
        """The acceptance bar: the full seeded workload suite, all five
        theory families, every nonempty verdict re-checked by the
        engine-independent validator."""
        kinds = {}
        for job in generate_jobs(40, seed=7):
            result = execute_job(dataclasses.replace(job, certificate=True))
            assert result.ok, result.error
            if result.nonempty:
                assert result.certificate, job.label
                report = validate_encoded(result.certificate)
                assert report["format"] == CERTIFICATE_FORMAT
                kinds[report["theory_kind"]] = kinds.get(report["theory_kind"], 0) + 1
            else:
                # Empty verdicts have no witness, hence no certificate.
                assert result.certificate is None
        assert set(kinds) == {"all_databases", "hom", "word_run", "tree_run", "data_valued"}

    def test_uncertified_job_carries_no_certificate(self):
        job = generate_jobs(1, seed=7)[0]
        result = execute_job(job)
        assert result.certificate is None


class TestCorruption:
    """Hand-corrupted certificates must be rejected (>= 3 distinct attacks)."""

    def test_unknown_state_in_run_rejected(self):
        system, theory, result = _triangle()
        corrupt = copy.deepcopy(build_certificate(system, theory, result))
        corrupt["steps"][0][0] = "no-such-state"
        with pytest.raises(CertificateError):
            validate_certificate(corrupt)

    def test_guard_violation_rejected(self):
        # Drop every edge from the witness database: the run's guards can
        # no longer hold over it.
        system, theory, result = _triangle()
        corrupt = copy.deepcopy(build_certificate(system, theory, result))
        corrupt["database"]["relations"]["E"] = []
        with pytest.raises(CertificateError):
            validate_certificate(corrupt)

    def test_transition_index_out_of_range_rejected(self):
        system, theory, result = _triangle()
        corrupt = copy.deepcopy(build_certificate(system, theory, result))
        corrupt["transitions"][0] = 10_000
        with pytest.raises(CertificateError):
            validate_certificate(corrupt)

    def test_hom_evidence_tampering_rejected(self):
        # Strip the colouring of one element: the homomorphism evidence no
        # longer covers the witness domain.
        system, theory, result = _hom_triangle()
        certificate = build_certificate(system, theory, result)
        colour = next(
            name
            for name in certificate["database"]["relations"]
            if name.startswith("hom_color_") and certificate["database"]["relations"][name]
        )
        corrupt = copy.deepcopy(certificate)
        corrupt["database"]["relations"][colour] = []
        with pytest.raises(CertificateError):
            validate_certificate(corrupt)

    def test_unsupported_format_version_rejected(self):
        system, theory, result = _triangle()
        corrupt = copy.deepcopy(build_certificate(system, theory, result))
        corrupt["format"] = CERTIFICATE_FORMAT + 1
        with pytest.raises(CertificateError):
            validate_certificate(corrupt)


class TestEngineIndependence:
    def test_no_engine_imports_in_source(self):
        """Static guarantee: no import statement in repro/certify names the
        engine, the plan layer, or the perf caches (docstrings may)."""
        assert CERTIFY_SOURCES, "certify package sources not found"
        for source in CERTIFY_SOURCES:
            for line in source.read_text().splitlines():
                stripped = line.strip()
                if not stripped.startswith(("import ", "from ")):
                    continue
                for forbidden in ("fraisse.engine", "fraisse.plans", "repro.perf"):
                    assert forbidden not in stripped, (
                        f"{source.name} imports {forbidden}: {stripped}"
                    )

    def test_import_does_not_load_engine(self):
        """Dynamic guarantee: (re-)importing the validator pulls in neither
        the engine nor the plan compiler.

        The ``repro`` package root imports the engine for its public API,
        so the check purges those modules after the parent import and
        asserts the certify package does not bring them back.
        """
        code = (
            "import sys\n"
            "import repro  # the package root legitimately loads the engine\n"
            "for name in [n for n in sys.modules if 'fraisse' in n or 'certify' in n]:\n"
            "    del sys.modules[name]\n"
            "import repro.certify\n"
            "from repro.certify import validate_certificate\n"
            "assert 'repro.fraisse.engine' not in sys.modules, 'engine imported'\n"
            "assert 'repro.fraisse.plans' not in sys.modules, 'plans imported'\n"
        )
        src = str(Path(__file__).resolve().parents[1] / "src")
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )


class TestDeprecationShim:
    def test_witness_database_property_warns_and_matches_run(self):
        _, _, result = _triangle()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            database = result.witness_database
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert database == result.run.database

    def test_witness_database_none_for_empty_result(self):
        from repro.fraisse.engine import EmptinessResult

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert EmptinessResult(nonempty=False).witness_database is None
