"""Tests for the CI benchmark regression guard (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _record(
    path,
    speedup=10.0,
    workload="bench_e2",
    engine=...,
    certify_overhead=2.0,
    certify=...,
):
    if engine is ...:
        engine = {workload: {"speedup": speedup}}
    if certify is ...:
        certify = {
            "certificate_overhead_percent": certify_overhead,
            "nonempty": 20,
        }
    payload = {"mode": "full", "engine": engine, "certify": certify}
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture()
def records(tmp_path):
    baseline = _record(tmp_path / "baseline.json", speedup=10.0)
    current = _record(tmp_path / "current.json", speedup=9.0)
    return baseline, current


class TestVerdicts:
    def test_passes_within_tolerance(self, records):
        baseline, current = records
        assert check_regression.check(baseline, current) == 0

    def test_fails_on_regression(self, tmp_path):
        baseline = _record(tmp_path / "b.json", speedup=40.0)
        current = _record(tmp_path / "c.json", speedup=1.2)
        assert check_regression.check(baseline, current) == 1

    def test_absolute_floor_applies(self, tmp_path):
        # Committed speedup so small that tolerance alone would pass ~0x.
        baseline = _record(tmp_path / "b.json", speedup=2.0)
        current = _record(tmp_path / "c.json", speedup=1.1)
        assert check_regression.check(baseline, current) == 1


class TestCertifyGate:
    def test_fails_when_certify_overhead_blows_past_limit(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json")
        current = _record(tmp_path / "c.json", speedup=9.0, certify_overhead=60.0)
        assert check_regression.check(baseline, current) == 1
        assert "witness certificates" in capsys.readouterr().err

    def test_negative_certify_overhead_passes(self, tmp_path):
        # Timing noise can make the certified run measure faster than plain.
        baseline = _record(tmp_path / "b.json")
        current = _record(tmp_path / "c.json", speedup=9.0, certify_overhead=-1.5)
        assert check_regression.check(baseline, current) == 0

    def test_missing_certify_section_is_hard_failure(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json")
        current = _record(tmp_path / "c.json", speedup=9.0, certify=None)
        assert check_regression.check(baseline, current) == 2
        err = capsys.readouterr().err
        assert "GUARD FAILURE" in err and "certify" in err

    def test_certify_with_no_certificates_is_hard_failure(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json")
        current = _record(
            tmp_path / "c.json",
            speedup=9.0,
            certify={"certificate_overhead_percent": 1.0, "nonempty": 0},
        )
        assert check_regression.check(baseline, current) == 2
        assert "validated no certificates" in capsys.readouterr().err


class TestMissingKeysAreHardFailures:
    def test_baseline_missing_workload_key(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json", workload="bench_e99")
        current = _record(tmp_path / "c.json")
        assert check_regression.check(baseline, current) == 2
        err = capsys.readouterr().err
        assert "GUARD FAILURE" in err
        assert "bench_e2" in err and "bench_e99" in err  # names what exists

    def test_current_missing_workload_key(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json")
        current = _record(tmp_path / "c.json", workload="bench_renamed")
        assert check_regression.check(baseline, current) == 2
        assert "GUARD FAILURE" in capsys.readouterr().err

    def test_missing_engine_section(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json", engine=None)
        current = _record(tmp_path / "c.json")
        assert check_regression.check(baseline, current) == 2
        assert "engine" in capsys.readouterr().err

    def test_non_dict_workload_entry(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json", engine={"bench_e2": None})
        current = _record(tmp_path / "c.json")
        assert check_regression.check(baseline, current) == 2
        assert "GUARD FAILURE" in capsys.readouterr().err

    def test_null_speedup(self, tmp_path, capsys):
        baseline = _record(tmp_path / "b.json", engine={"bench_e2": {"speedup": None}})
        current = _record(tmp_path / "c.json")
        assert check_regression.check(baseline, current) == 2
        assert "usable speedup" in capsys.readouterr().err

    def test_unreadable_baseline_file(self, tmp_path, capsys):
        current = _record(tmp_path / "c.json")
        assert check_regression.check(tmp_path / "missing.json", current) == 2
        assert "GUARD FAILURE" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        baseline.write_text("{not json")
        current = _record(tmp_path / "c.json")
        assert check_regression.check(baseline, current) == 2
        assert "GUARD FAILURE" in capsys.readouterr().err


def _service_record(
    path,
    keepalive=500.0,
    close=450.0,
    load_test=...,
    retry_overhead=1.0,
    fault_tolerance=...,
    cluster_jps=25.0,
    cluster=...,
):
    if load_test is ...:
        load_test = {
            "keepalive": {"throughput_rps": keepalive},
            "close_per_request": {"throughput_rps": close},
        }
    if fault_tolerance is ...:
        fault_tolerance = {"retry_overhead_percent": retry_overhead}
    if cluster is ...:
        cluster = {
            "warm_throughput_jps": cluster_jps,
            "verdicts_match_serial": True,
        }
    payload = {
        "mode": "full",
        "service": {
            "load_test": load_test,
            "fault_tolerance": fault_tolerance,
            "cluster": cluster,
        },
    }
    path.write_text(json.dumps(payload))
    return path


class TestServiceGuard:
    def test_passes_when_keepalive_holds(self, tmp_path):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(tmp_path / "c.json", keepalive=480.0, close=430.0)
        assert check_regression.check_service(baseline, current) == 0

    def test_fails_when_keepalive_loses_to_close(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(tmp_path / "c.json", keepalive=200.0, close=400.0)
        assert check_regression.check_service(baseline, current) == 1
        assert "close-per-request baseline" in capsys.readouterr().err

    def test_fails_when_throughput_collapses(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json", keepalive=1000.0)
        current = _service_record(tmp_path / "c.json", keepalive=5.0, close=5.0)
        assert check_regression.check_service(baseline, current) == 1
        assert "floor" in capsys.readouterr().err

    def test_missing_load_test_is_hard_failure(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json", load_test=None)
        current = _service_record(tmp_path / "c.json")
        assert check_regression.check_service(baseline, current) == 2
        err = capsys.readouterr().err
        assert "GUARD FAILURE" in err and "load_test" in err

    def test_missing_mode_throughput_is_hard_failure(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(
            tmp_path / "c.json",
            load_test={"keepalive": {"throughput_rps": 100.0}},
        )
        assert check_regression.check_service(baseline, current) == 2
        assert "close_per_request" in capsys.readouterr().err

    def test_fails_when_retry_overhead_blows_past_limit(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(tmp_path / "c.json", retry_overhead=60.0)
        assert check_regression.check_service(baseline, current) == 1
        assert "retry policy" in capsys.readouterr().err

    def test_negative_retry_overhead_passes(self, tmp_path):
        # Timing noise can make the armed run measure faster than plain.
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(tmp_path / "c.json", retry_overhead=-2.5)
        assert check_regression.check_service(baseline, current) == 0

    def test_missing_fault_tolerance_is_hard_failure(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(tmp_path / "c.json", fault_tolerance=None)
        assert check_regression.check_service(baseline, current) == 2
        err = capsys.readouterr().err
        assert "GUARD FAILURE" in err and "fault_tolerance" in err

    def test_fails_when_cluster_throughput_collapses(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json", cluster_jps=100.0)
        current = _service_record(tmp_path / "c.json", cluster_jps=1.0)
        assert check_regression.check_service(baseline, current) == 1
        assert "warm-serve" in capsys.readouterr().err

    def test_missing_cluster_is_hard_failure(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(tmp_path / "c.json", cluster=None)
        assert check_regression.check_service(baseline, current) == 2
        err = capsys.readouterr().err
        assert "GUARD FAILURE" in err and "cluster" in err

    def test_cluster_without_verdict_parity_is_hard_failure(self, tmp_path, capsys):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(
            tmp_path / "c.json",
            cluster={"warm_throughput_jps": 50.0, "verdicts_match_serial": False},
        )
        assert check_regression.check_service(baseline, current) == 2
        err = capsys.readouterr().err
        assert "GUARD FAILURE" in err and "parity" in err

    def test_main_kind_service(self, tmp_path):
        baseline = _service_record(tmp_path / "b.json")
        current = _service_record(tmp_path / "c.json")
        code = check_regression.main(
            ["--kind", "service", "--baseline", str(baseline), "--current", str(current)]
        )
        assert code == 0


class TestCommandLine:
    def test_main_round_trip(self, records):
        baseline, current = records
        assert (
            check_regression.main(
                ["--baseline", str(baseline), "--current", str(current)]
            )
            == 0
        )

    def test_main_custom_workload_missing_everywhere(self, records, capsys):
        baseline, current = records
        code = check_regression.main(
            [
                "--baseline",
                str(baseline),
                "--current",
                str(current),
                "--workload",
                "bench_renamed",
            ]
        )
        assert code == 2
        assert "bench_renamed" in capsys.readouterr().err
