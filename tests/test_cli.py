"""Tests for the ``repro`` command-line interface."""

import json

import pytest

from repro.cli import EXAMPLES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["demo"],
            ["check", "triangle"],
            ["info"],
            ["batch", "--count", "3"],
            ["store", "stats", "--db", "x.sqlite"],
            ["bench", "--smoke"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.handler)


class TestDemo:
    def test_demo_prints_both_examples(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Example 1 (all databases): nonempty" in out
        assert "Example 2 (HOM template): empty" in out
        assert "witness database" in out


class TestCheck:
    def test_check_triangle(self, capsys):
        assert main(["check", "triangle"]) == 0
        out = capsys.readouterr().out
        assert "triangle: nonempty" in out
        assert "configurations_explored" in out

    def test_check_json_statistics(self, capsys):
        assert main(["check", "self-loop", "--json", "--strategy", "dfs"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out.split("\n", 1)[1])
        assert payload["strategy"] == "dfs"
        assert payload["configurations_explored"] >= 1

    def test_check_unknown_example_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "not-an-example"])

    def test_examples_registry_is_consistent(self):
        for name, (system_builder, theory_builder) in EXAMPLES.items():
            system = system_builder()
            theory = theory_builder()
            assert system.schema.is_subschema_of(theory.schema), name


class TestInfo:
    def test_info_text(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert "search strategies: bfs, dfs, priority" in out

    def test_info_json(self, capsys):
        assert main(["info", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategies"] == ["bfs", "dfs", "priority"]
        assert isinstance(payload["caches_enabled"], bool)
        assert "cache_stats" in payload


class TestBatch:
    def test_batch_without_store(self, capsys):
        assert main(["batch", "--count", "5", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "batch: 5 jobs" in out
        assert "cache hits: 0, executed: 5" in out

    def test_batch_json_report(self, capsys):
        assert (
            main(["batch", "--count", "4", "--seed", "9", "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == 4
        assert payload["seed"] == 9
        assert len(payload["results"]) == 4

    def test_batch_store_warm_rerun(self, tmp_path, capsys):
        db = str(tmp_path / "store.sqlite")
        argv = ["batch", "--count", "6", "--seed", "3", "--store", db]
        assert main(argv) == 0
        assert "cache hits: 0, executed: 6" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache hits: 6, executed: 0" in capsys.readouterr().out

    def test_batch_unknown_family(self, capsys):
        assert main(["batch", "--count", "2", "--families", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_batch_bad_worker_count_is_a_clean_error(self, capsys):
        assert main(["batch", "--count", "2", "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err


class TestStore:
    def _populate(self, db):
        assert main(["batch", "--count", "4", "--seed", "1", "--store", db]) == 0

    def test_stats(self, tmp_path, capsys):
        db = str(tmp_path / "s.sqlite")
        self._populate(db)
        capsys.readouterr()
        assert main(["store", "stats", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "4 results" in out

    def test_export_stdout_and_file(self, tmp_path, capsys):
        db = str(tmp_path / "s.sqlite")
        self._populate(db)
        capsys.readouterr()
        assert main(["store", "export", "--db", db]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 4
        out_file = tmp_path / "dump.json"
        assert main(["store", "export", "--db", db, "--output", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["count"] == 4

    def test_clear(self, tmp_path, capsys):
        db = str(tmp_path / "s.sqlite")
        self._populate(db)
        capsys.readouterr()
        assert main(["store", "clear", "--db", db]) == 0
        assert "removed 4 results" in capsys.readouterr().out
        assert main(["store", "stats", "--db", db]) == 0
        assert "0 results" in capsys.readouterr().out

    def test_missing_db_is_a_clear_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.sqlite"
        for action in ("stats", "export", "clear"):
            assert main(["store", action, "--db", str(missing)]) == 2
            assert "no result store" in capsys.readouterr().err
            # In particular `clear` must not have created an empty database.
            assert not missing.exists()


class TestBenchProfile:
    def test_profile_prints_hot_functions(self, capsys):
        assert main(["bench", "--smoke", "--profile", "stress_hom_deep"]) == 0
        out = capsys.readouterr().out
        assert "stress_hom_deep" in out
        assert "cumulative" in out  # pstats header

    def test_profile_unknown_workload_rejected(self, capsys):
        assert main(["bench", "--profile", "not-a-workload"]) == 2
        assert "not-a-workload" in capsys.readouterr().err


class TestTrace:
    def _traced_store(self, tmp_path, capsys):
        db = str(tmp_path / "traced.sqlite")
        assert main(["batch", "--count", "2", "--seed", "7", "--trace", "--store", db]) == 0
        out = capsys.readouterr().out
        assert "traces recorded" in out and "repro trace" in out
        from repro.service import ResultStore

        with ResultStore(db) as store:
            fingerprints = [entry["fingerprint"] for entry in store.export()["results"]]
        return db, fingerprints

    def test_batch_trace_then_export_chrome_json(self, tmp_path, capsys):
        db, fingerprints = self._traced_store(tmp_path, capsys)
        assert main(["trace", fingerprints[0], "--db", db]) == 0
        exported = json.loads(capsys.readouterr().out)
        assert exported["displayTimeUnit"] == "ms"
        events = exported["traceEvents"]
        assert events[0]["ph"] == "M"
        assert any(event["ph"] == "X" for event in events)

    def test_trace_output_file_and_raw(self, tmp_path, capsys):
        db, fingerprints = self._traced_store(tmp_path, capsys)
        out_file = tmp_path / "trace.json"
        assert main(["trace", fingerprints[0], "--db", db, "--output", str(out_file)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(out_file.read_text())["traceEvents"]
        assert main(["trace", fingerprints[0], "--db", db, "--raw"]) == 0
        raw = json.loads(capsys.readouterr().out)
        assert raw["unit"] == "seconds" and raw["spans"]

    def test_trace_error_paths(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.sqlite")
        assert main(["trace", "0" * 64, "--db", missing]) == 2
        assert "no result store" in capsys.readouterr().err
        # A store with verdicts but no traces: clear remediation hint.
        db = str(tmp_path / "plain.sqlite")
        assert main(["batch", "--count", "1", "--seed", "7", "--store", db]) == 0
        capsys.readouterr()
        from repro.service import ResultStore

        with ResultStore(db) as store:
            fingerprint = store.export()["results"][0]["fingerprint"]
        assert main(["trace", "0" * 64, "--db", db]) == 2
        assert "no stored verdict" in capsys.readouterr().err
        assert main(["trace", fingerprint, "--db", db]) == 2
        assert "--trace" in capsys.readouterr().err


class TestStoreUrls:
    """URL-style `--store` addressing, shared by batch / serve / store / trace."""

    def test_batch_accepts_sqlite_url(self, tmp_path, capsys):
        db = tmp_path / "url.sqlite"
        assert main(["batch", "--count", "2", "--seed", "1", "--store", f"sqlite:{db}"]) == 0
        assert db.is_file()
        capsys.readouterr()
        assert main(["store", "stats", "--store", f"sqlite:{db}"]) == 0
        assert "2 results" in capsys.readouterr().out

    def test_store_db_flag_is_deprecated_alias(self, tmp_path, capsys):
        db = str(tmp_path / "alias.sqlite")
        assert main(["batch", "--count", "2", "--seed", "1", "--store", db]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--db", db]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "2 results" in captured.out
        # --store wins when both are given, and stays silent.
        assert main(["store", "stats", "--store", db, "--db", "ignored"]) == 0
        assert "deprecated" not in capsys.readouterr().err

    def test_store_and_trace_against_remote_keyspace(self, capsys):
        from repro.service import KeyspaceServerThread

        with KeyspaceServerThread() as keyspace:
            assert (
                main(
                    [
                        "batch", "--count", "2", "--seed", "1",
                        "--trace", "--store", keyspace.base_url,
                    ]
                )
                == 0
            )
            capsys.readouterr()
            assert main(["store", "stats", "--store", keyspace.base_url]) == 0
            assert "2 results" in capsys.readouterr().out
            from repro.service.client import HTTPBackend

            backend = HTTPBackend(keyspace.base_url)
            fingerprint = backend.keys()[0]
            backend.close()
            assert main(["trace", fingerprint, "--store", keyspace.base_url]) == 0
            assert "traceEvents" in capsys.readouterr().out

    def test_store_actions_require_a_spec(self, capsys):
        assert main(["store", "stats"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_store_serve_rejects_bad_policy(self, capsys):
        assert main(["store", "serve", "--ttl", "-1", "--port", "0"]) == 2
        assert "ttl" in capsys.readouterr().err.lower()


class TestServeRoles:
    def test_coordinator_requires_runners(self, capsys):
        assert main(["serve", "--role", "coordinator", "--port", "0"]) == 2
        assert "--runner" in capsys.readouterr().err

    def test_runner_flag_requires_coordinator_role(self, capsys):
        assert (
            main(["serve", "--runner", "http://127.0.0.1:1", "--port", "0"]) == 2
        )
        assert "coordinator" in capsys.readouterr().err

    def test_role_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--role", "supervisor"])
