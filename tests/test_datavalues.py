"""Tests for homogeneous structures and the data-value products (Section 4.4)."""

import pytest
from fractions import Fraction

from repro.datavalues import (
    NATURALS_WITH_EQUALITY,
    NATURALS_WITH_ORDER,
    RATIONALS_WITH_ORDER,
    DataValuedTheory,
    NaturalsWithEquality,
    RationalsWithOrder,
    with_data_values,
)
from repro.errors import TheoryError
from repro.fraisse.engine import EmptinessSolver
from repro.logic.schema import Schema
from repro.logic.structures import Structure
from repro.relational import AllDatabasesTheory, HomTheory, clique_template
from repro.relational.csp import GRAPH_SCHEMA
from repro.systems.dds import DatabaseDrivenSystem


def test_equality_structure_basics():
    sim = NATURALS_WITH_EQUALITY
    assert sim.holds("sim", 3, 3)
    assert not sim.holds("sim", 3, 4)
    assert not sim.holds("other", 3, 3)
    choices = list(sim.fresh_value_choices([0, 0, 2], injective=False))
    assert 0 in choices and 2 in choices
    assert any(c not in (0, 2) for c in choices)
    injective_choices = list(sim.fresh_value_choices([0, 1], injective=True))
    assert all(c not in (0, 1) for c in injective_choices)


def test_order_structure_basics():
    lt = RATIONALS_WITH_ORDER
    assert lt.holds("lt", 1, 2)
    assert not lt.holds("lt", 2, 1)
    assert not lt.holds("lt", 2, 2)
    choices = list(lt.fresh_value_choices([Fraction(0), Fraction(1)], injective=True))
    # below, between, above
    assert any(c < 0 for c in choices)
    assert any(0 < c < 1 for c in choices)
    assert any(c > 1 for c in choices)
    non_injective = list(lt.fresh_value_choices([Fraction(0)], injective=False))
    assert Fraction(0) in non_injective


def test_embedding_tests_into_homogeneous_structures():
    sim_schema = NATURALS_WITH_EQUALITY.schema
    diagonal = Structure(
        sim_schema, [0, 1], relations={"sim": {(0, 0), (1, 1)}}
    )
    assert NATURALS_WITH_EQUALITY.embeds(diagonal)
    bad = Structure(sim_schema, [0, 1], relations={"sim": {(0, 0), (1, 1), (0, 1)}})
    assert not NATURALS_WITH_EQUALITY.embeds(bad)

    lt_schema = RATIONALS_WITH_ORDER.schema
    chain = Structure(lt_schema, [0, 1, 2], relations={"lt": {(0, 1), (1, 2), (0, 2)}})
    assert RATIONALS_WITH_ORDER.embeds(chain)
    cyclic = Structure(lt_schema, [0, 1], relations={"lt": {(0, 1), (1, 0)}})
    assert not RATIONALS_WITH_ORDER.embeds(cyclic)


def test_naturals_with_order_reuses_dense_choices():
    assert NATURALS_WITH_ORDER.schema == RATIONALS_WITH_ORDER.schema
    assert "naturals" in NATURALS_WITH_ORDER.name


def test_product_schema_and_clash_detection():
    theory = with_data_values(AllDatabasesTheory(GRAPH_SCHEMA), NATURALS_WITH_EQUALITY)
    assert theory.schema.has_relation("E")
    assert theory.schema.has_relation("sim")
    with pytest.raises(TheoryError):
        with_data_values(
            AllDatabasesTheory(Schema.relational(sim=2)), NATURALS_WITH_EQUALITY
        )


def test_blowup_preserved_proposition1():
    base = AllDatabasesTheory(GRAPH_SCHEMA)
    product = with_data_values(base, NATURALS_WITH_EQUALITY)
    for n in range(1, 6):
        assert product.blowup(n) == base.blowup(n)


def _same_value_system(schema):
    return DatabaseDrivenSystem.build(
        schema=schema,
        registers=["x", "y"],
        states=["a", "b", "c"],
        initial="a",
        accepting="c",
        transitions=[
            ("a", "x_old = x_new & y_old = y_new & E(x_new, y_new)", "b"),
            ("b", "x_old = x_new & y_old = y_new & sim(x_old, y_old) & !(x_old = y_old)", "c"),
        ],
    )


def test_tensor_product_allows_shared_values():
    schema = GRAPH_SCHEMA.union(NATURALS_WITH_EQUALITY.schema)
    system = _same_value_system(schema)
    theory = with_data_values(AllDatabasesTheory(GRAPH_SCHEMA), NATURALS_WITH_EQUALITY)
    result = EmptinessSolver(theory).check(system)
    assert result.nonempty
    system.validate_run(result.run)
    # The witness database carries the sim relation and two distinct nodes share a value.
    assert any(a != b for a, b in result.run.database.relation("sim"))


def test_odot_product_forbids_shared_values_example6():
    schema = GRAPH_SCHEMA.union(NATURALS_WITH_EQUALITY.schema)
    system = _same_value_system(schema)
    theory = with_data_values(
        AllDatabasesTheory(GRAPH_SCHEMA), NATURALS_WITH_EQUALITY, injective=True
    )
    result = EmptinessSolver(theory).check(system)
    assert result.empty and result.exhausted


def test_order_comparisons_corollary8_style():
    schema = GRAPH_SCHEMA.union(RATIONALS_WITH_ORDER.schema)
    increasing = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["a", "b", "c"],
        initial="a", accepting="c",
        transitions=[
            ("a", "x_old = x_new & y_old = y_new & lt(x_new, y_new)", "b"),
            ("b", "x_new = y_old & lt(y_old, y_new)", "c"),
        ],
    )
    impossible = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["a", "b"],
        initial="a", accepting="b",
        transitions=[("a", "lt(x_new, y_new) & lt(y_new, x_new)", "b")],
    )
    theory = with_data_values(
        AllDatabasesTheory(GRAPH_SCHEMA), RATIONALS_WITH_ORDER, injective=True
    )
    assert EmptinessSolver(theory).check(increasing).nonempty
    assert EmptinessSolver(theory).check(impossible).empty


def test_hom_with_data_values():
    """Corollary 8: HOM(H) combined with a data-value structure."""
    schema = GRAPH_SCHEMA.union(NATURALS_WITH_EQUALITY.schema)
    # Two adjacent nodes with equal values and a triangle requirement: the
    # triangle is impossible over the bipartite template regardless of values.
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y", "z"], states=["a", "b"],
        initial="a", accepting="b",
        transitions=[(
            "a",
            "E(x_new, y_new) & E(y_new, z_new) & E(z_new, x_new) & sim(x_new, y_new)",
            "b",
        )],
    )
    empty_theory = with_data_values(HomTheory(clique_template(2)), NATURALS_WITH_EQUALITY)
    nonempty_theory = with_data_values(HomTheory(clique_template(3)), NATURALS_WITH_EQUALITY)
    assert EmptinessSolver(empty_theory).check(system).empty
    assert EmptinessSolver(nonempty_theory).check(system).nonempty


def test_product_membership_checks_both_components():
    base = HomTheory(clique_template(2))
    theory = with_data_values(base, NATURALS_WITH_EQUALITY)
    schema = theory.schema
    good = Structure(
        schema, [0, 1],
        relations={"E": {(0, 1)}, "sim": {(0, 0), (1, 1)}},
    )
    triangle = Structure(
        schema, [0, 1, 2],
        relations={"E": {(0, 1), (1, 2), (2, 0)}, "sim": {(0, 0), (1, 1), (2, 2)}},
    )
    bad_values = Structure(
        schema, [0, 1],
        relations={"E": {(0, 1)}, "sim": {(0, 0)}},
    )
    assert theory.membership(good)
    assert not theory.membership(triangle)       # base part fails (odd cycle)
    assert not theory.membership(bad_values)     # sim is not reflexive on 1


def test_describe_mentions_product_kind():
    tensor = with_data_values(AllDatabasesTheory(GRAPH_SCHEMA), NATURALS_WITH_EQUALITY)
    odot = with_data_values(AllDatabasesTheory(GRAPH_SCHEMA), NATURALS_WITH_EQUALITY, True)
    assert "⊗" in tensor.describe()
    assert "⊙" in odot.describe()
