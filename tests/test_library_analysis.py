"""Tests for the ready-made systems library, baselines and the analysis helpers."""

import pytest

from repro.analysis import (
    SolverProfile,
    format_table,
    measure_word_blowup,
    profile_check,
)
from repro.baselines import (
    all_databases_of_size,
    all_databases_up_to,
    count_databases_of_size,
    random_colored_graph,
    random_databases,
)
from repro.library import clique_system, odd_red_cycle_system, red_path_system
from repro.logic.schema import Schema
from repro.relational import AllDatabasesTheory
from repro.relational.csp import (
    COLORED_GRAPH_SCHEMA,
    GRAPH_SCHEMA,
    bipartite_template,
    clique_template,
    cycle_graph,
    example_graph_g,
    odd_red_cycle_free_template,
    path_graph,
    template_from_edges,
)
from repro.systems.simulate import has_accepting_run
from repro.words import NFA, PositionAutomaton, pre_run_of_word


def test_enumeration_counts_match_formula():
    schema = Schema.relational(R=1)
    assert count_databases_of_size(schema, 2) == 4
    assert len(list(all_databases_of_size(schema, 2))) == 4
    assert len(list(all_databases_up_to(schema, 2))) == 2 + 4
    graph_count = count_databases_of_size(GRAPH_SCHEMA, 2)
    assert graph_count == 2 ** 4
    assert len(list(all_databases_of_size(GRAPH_SCHEMA, 2))) == graph_count


def test_random_databases_reproducible():
    a = random_databases(GRAPH_SCHEMA, count=3, size=3, seed=7)
    b = random_databases(GRAPH_SCHEMA, count=3, size=3, seed=7)
    assert a == b
    g = random_colored_graph(4)
    assert g.schema == COLORED_GRAPH_SCHEMA


def test_csp_templates():
    k3 = clique_template(3)
    assert len(k3.relation("E")) == 6
    loops = clique_template(2, with_loops=True)
    assert loops.holds("E", 0, 0)
    assert bipartite_template().size == 2
    template = odd_red_cycle_free_template()
    assert template.holds("red", "r1") and not template.holds("red", "w")
    custom = template_from_edges(["u", "v"], [("u", "v")], red_nodes=["u"], symmetric=True)
    assert custom.holds("E", "v", "u")
    with pytest.raises(Exception):
        clique_template(0)


def test_example_graph_and_cycles():
    g = example_graph_g()
    assert g.size == 5
    assert has_accepting_run(odd_red_cycle_system(), g)
    assert cycle_graph(3).holds("E", 2, 0)
    assert path_graph(2).holds("E", 0, 1)


def test_clique_system_builder():
    system = clique_system(3)
    assert len(system.registers) == 3
    triangle = cycle_graph(3, schema=GRAPH_SCHEMA)
    both_ways = template_from_edges([0, 1, 2], [(0, 1), (1, 2), (2, 0)], symmetric=True)
    assert not has_accepting_run(system, triangle)  # directed cycle is not a 2-way clique
    assert has_accepting_run(system, both_ways)


def test_red_path_system_family_sizes():
    for length in (1, 2, 3):
        system = red_path_system(length)
        assert len(system.states) == length + 2
        assert has_accepting_run(system, path_graph(length + 1, red=True))


def test_profile_check_and_format_table():
    profile = profile_check(
        "example1", AllDatabasesTheory(COLORED_GRAPH_SCHEMA), odd_red_cycle_system()
    )
    assert isinstance(profile, SolverProfile)
    assert profile.nonempty
    row = profile.row()
    assert row[0] == "example1" and row[1] == "nonempty"
    table = format_table(["label", "status"], [["a", "ok"], ["bb", "also ok"]])
    assert "label" in table and "also ok" in table
    assert len(table.splitlines()) == 4


def test_measure_word_blowup_bound():
    nfa = NFA.make(
        states=["s0", "s1"], alphabet=["a", "b"],
        transitions=[("s0", "a", "s0"), ("s0", "b", "s1"), ("s1", "a", "s1")],
        initial=["s0"], accepting=["s1"],
    )
    automaton = PositionAutomaton.from_nfa(nfa)
    pre_run = pre_run_of_word(automaton, ("a", "a", "b", "a"))
    measurement = measure_word_blowup(
        automaton, pre_run, [[0], [0, 3], [1, 2, 3]]
    )
    for generators, observed, theoretical in measurement.rows():
        assert observed <= theoretical
        assert observed >= generators
