"""Tests for the word case (Section 5.1, Theorem 10)."""

import pytest

from repro.fraisse.engine import EmptinessSolver
from repro.logic.structures import Structure
from repro.systems.dds import DatabaseDrivenSystem
from repro.systems.simulate import find_accepting_run
from repro.words import (
    NFA,
    PositionAutomaton,
    WordRunTheory,
    all_words,
    in_class_c,
    pre_run_of_word,
    run_schema,
    rundb,
    word_schema,
    worddb,
)


def one_b_nfa():
    """L = a* b a* : exactly one b."""
    return NFA.make(
        states=["s0", "s1"], alphabet=["a", "b"],
        transitions=[("s0", "a", "s0"), ("s0", "b", "s1"), ("s1", "a", "s1")],
        initial=["s0"], accepting=["s1"],
    )


def even_a_nfa():
    """L = words over {a} of even, positive length."""
    return NFA.make(
        states=["e", "o"], alphabet=["a"],
        transitions=[("e", "a", "o"), ("o", "a", "e")],
        initial=["e"], accepting=["e"],
    )


def test_nfa_accepts():
    nfa = one_b_nfa()
    assert nfa.accepts(("a", "b", "a"))
    assert nfa.accepts(("b",))
    assert not nfa.accepts(("a", "a"))
    assert not nfa.accepts(("b", "b"))
    assert not nfa.accepts(())


def test_language_sample():
    words = set(one_b_nfa().language_sample(3))
    assert ("b",) in words and ("a", "b", "a") in words
    assert all(word.count("b") == 1 for word in words)


def test_nfa_validation():
    from repro.errors import AutomatonError

    with pytest.raises(AutomatonError):
        NFA.make(["s"], ["a"], [("s", "a", "missing")], ["s"], ["s"])
    with pytest.raises(AutomatonError):
        NFA.make(["s"], ["a"], [("s", "c", "s")], ["s"], ["s"])


def test_position_automaton_normal_form():
    automaton = PositionAutomaton.from_nfa(one_b_nfa())
    # Every state reads a unique letter.
    assert all("|" in state for state in automaton.states)
    assert set(automaton.letter.values()) <= {"a", "b"}
    # Chain condition (Lemma 12): states in a* b a* order.
    run = automaton.accepts_with_run(("a", "b", "a"))
    assert run is not None
    assert automaton.chain_condition(run)
    assert automaton.accepts_with_run(("a", "a")) is None


def test_chain_condition_examples():
    automaton = PositionAutomaton.from_nfa(one_b_nfa())
    a_state = next(s for s in automaton.states if automaton.letter[s] == "a" and s.startswith("s0"))
    b_state = next(s for s in automaton.states if automaton.letter[s] == "b")
    after_state = next(s for s in automaton.states if s.startswith("s1") and automaton.letter[s] == "a")
    assert automaton.chain_condition([a_state, b_state, after_state])
    assert not automaton.chain_condition([b_state, b_state])  # two b's impossible
    assert not automaton.chain_condition([after_state, b_state])


def test_chain_to_word_expansion():
    automaton = PositionAutomaton.from_nfa(even_a_nfa())
    state = automaton.states[0]
    word, states = automaton.chain_to_word([state, state])
    assert len(word) >= 2
    assert even_a_nfa().accepts(word)


def test_worddb_structure():
    database = worddb(("a", "b", "a"))
    assert database.size == 3
    assert database.holds("before", 0, 2)
    assert not database.holds("before", 2, 0)
    assert database.holds("label_b", 1)
    assert not database.holds("label_b", 0)


def test_rundb_pointers():
    nfa = one_b_nfa()
    automaton = PositionAutomaton.from_nfa(nfa)
    pre_run = pre_run_of_word(automaton, ("a", "b", "a"))
    database = rundb(automaton, pre_run)
    schema = run_schema(automaton)
    assert schema.function_names  # leftmost/rightmost pointers exist
    # The pointer functions are total and point backwards/forwards or self.
    for name in schema.function_names:
        for (position,), value in database.function(name).items():
            assert value in database.domain
    assert in_class_c(automaton, pre_run)


def test_in_class_c_respects_chain_condition():
    automaton = PositionAutomaton.from_nfa(one_b_nfa())
    b_state = next(s for s in automaton.states if automaton.letter[s] == "b")
    assert not in_class_c(automaton, [(0, b_state), (1, b_state)])


def test_word_theory_membership():
    theory = WordRunTheory(one_b_nfa())
    assert theory.membership(worddb(("a", "b"), ["a", "b"]))
    assert not theory.membership(worddb(("a", "a"), ["a", "b"]))
    assert theory.blowup(2) >= 2


def _check_against_brute_force(nfa, system, max_length=4, expect=None):
    theory = WordRunTheory(nfa)
    result = EmptinessSolver(theory).check(system)
    brute = False
    for word in nfa.language_sample(max_length):
        if find_accepting_run(system, worddb(word, nfa.alphabet)) is not None:
            brute = True
            break
    if result.nonempty:
        system.validate_run(result.run)
        assert theory.membership(result.run.database)
    else:
        assert not brute, "engine says empty but a small word witness exists"
    if expect is not None:
        assert result.nonempty is expect
    return result


def test_theorem10_a_before_b():
    schema = word_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "label_a(x_old) & label_b(x_new) & before(x_old, x_new)", "q")],
    )
    _check_against_brute_force(one_b_nfa(), system, expect=True)


def test_theorem10_two_distinct_bs_impossible():
    schema = word_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "label_b(x_new) & label_b(y_new) & !(x_new = y_new)", "q")],
    )
    _check_against_brute_force(one_b_nfa(), system, expect=False)


def test_theorem10_walk_three_as_then_b():
    schema = word_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p0", "p1", "p2", "q"],
        initial="p0", accepting="q",
        transitions=[
            ("p0", "label_a(x_new)", "p1"),
            ("p1", "before(x_old, x_new) & label_a(x_new)", "p2"),
            ("p2", "before(x_old, x_new) & label_b(x_new)", "q"),
        ],
    )
    result = _check_against_brute_force(one_b_nfa(), system, expect=True)
    # The expanded witness word must contain at least two a's before its b.
    assert result.run.database.size >= 3


def test_theorem10_even_length_language():
    schema = word_schema(["a"])
    # Ask for three pairwise distinct positions in increasing order.
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p0", "p1", "p2"],
        initial="p0", accepting="p2",
        transitions=[
            ("p0", "label_a(x_new)", "p1"),
            ("p1", "before(x_old, x_new)", "p2"),
        ],
    )
    result = _check_against_brute_force(even_a_nfa(), system, expect=True)
    # Witness word is accepted, hence of even length.
    assert result.run.database.size % 2 == 0


def test_word_theory_data_values_theorem9_style():
    """Words combined with data values (the analogue of Theorem 9 for words)."""
    from repro.datavalues import NATURALS_WITH_EQUALITY, with_data_values

    nfa = one_b_nfa()
    schema = word_schema(["a", "b"]).union(NATURALS_WITH_EQUALITY.schema)
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x", "y"], states=["p", "q"], initial="p", accepting="q",
        transitions=[(
            "p",
            "before(x_new, y_new) & label_a(x_new) & label_a(y_new) & sim(x_new, y_new)"
            " & !(x_new = y_new)",
            "q",
        )],
    )
    tensor = with_data_values(WordRunTheory(nfa), NATURALS_WITH_EQUALITY)
    odot = with_data_values(WordRunTheory(nfa), NATURALS_WITH_EQUALITY, injective=True)
    assert EmptinessSolver(tensor).check(system).nonempty
    assert EmptinessSolver(odot).check(system).empty


def test_all_words_enumeration():
    words = list(all_words(["a", "b"], 2))
    assert () in words and ("a",) in words and ("b", "a") in words
    assert len(words) == 1 + 2 + 4
