"""StoreBackend conformance: one behavioral contract, three backends.

Every test in `TestBackendContract` runs against SQLite, Memory and HTTP
(a live `repro store serve` keyspace over a memory backend) through the
raw `StoreBackend` protocol -- the layer `ResultStore`, the cluster claim
machinery and the keyspace server itself all build on.  If a backend
passes this suite, the layers above cannot tell it apart from the others.

The HTTP-only classes below cover what the protocol alone cannot express:
server-side TTL/eviction policy, the If-Match wire mapping of the
conditional writes, auth, and the future-schema refusal handshake.
"""

import threading
import time

import pytest

from repro.errors import StoreError
from repro.service.backends import (
    ROW_FIELDS,
    ROW_SCHEMA_VERSION,
    MemoryBackend,
    SQLiteBackend,
    backend_from_url,
)
from repro.service.client import HTTPBackend
from repro.service.keyspace import KeyspaceServerThread, KeyspaceService

KEY = "a" * 64
OTHER = "b" * 64


def make_row(created_at=1000.0, label="job", **overrides):
    row = {field: None for field in ROW_FIELDS}
    row.update(
        fingerprint=overrides.get("fingerprint", KEY),
        created_at=created_at,
        label=label,
        nonempty=1,
        exhausted=1,
        elapsed_seconds=0.5,
        statistics="{}",
        job_spec="{}",
        cacheable=1,
    )
    row.update(overrides)
    return row


@pytest.fixture(params=["memory", "sqlite", "http"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    elif request.param == "sqlite":
        handle = SQLiteBackend(tmp_path / "conformance.db")
        yield handle
        handle.close()
    else:
        with KeyspaceServerThread() as server:
            handle = HTTPBackend(server.base_url)
            yield handle
            handle.close()


class TestBackendContract:
    def test_get_missing_returns_none(self, backend):
        assert backend.get(KEY) is None

    def test_put_then_get_round_trips_full_row(self, backend):
        row = make_row(wall_seconds=1.25, error=None)
        backend.put(KEY, row)
        stored = backend.get(KEY)
        assert stored is not None
        for field in ROW_FIELDS:
            assert stored[field] == row[field], field

    def test_certificate_column_round_trips_and_validates(self, backend):
        # Schema v5: a real encoded certificate survives every backend
        # byte-identically and still passes the engine-free validator.
        from repro import AllDatabasesTheory, EmptinessSolver
        from repro.certify import build_certificate, encode_certificate, validate_encoded
        from repro.library import triangle_system
        from repro.relational.csp import GRAPH_SCHEMA

        system = triangle_system()
        theory = AllDatabasesTheory(GRAPH_SCHEMA)
        result = EmptinessSolver(theory).check(system)
        encoded = encode_certificate(build_certificate(system, theory, result))
        backend.put(KEY, make_row(certificate=encoded))
        stored = backend.get(KEY)
        assert stored["certificate"] == encoded
        assert validate_encoded(stored["certificate"])["theory_kind"] == "all_databases"

    def test_put_is_last_write_wins(self, backend):
        backend.put(KEY, make_row(created_at=1.0, label="first"))
        backend.put(KEY, make_row(created_at=2.0, label="second"))
        assert backend.get(KEY)["label"] == "second"
        assert backend.count() == 1

    def test_put_if_absent_claims_once(self, backend):
        assert backend.put_if_absent(KEY, make_row(label="winner")) is True
        assert backend.put_if_absent(KEY, make_row(label="loser")) is False
        assert backend.get(KEY)["label"] == "winner"

    def test_put_if_absent_after_delete_succeeds(self, backend):
        backend.put(KEY, make_row())
        backend.delete(KEY)
        assert backend.put_if_absent(KEY, make_row(label="again")) is True

    def test_compare_and_put_swaps_only_on_matching_timestamp(self, backend):
        backend.put(KEY, make_row(created_at=10.0, label="old"))
        assert backend.compare_and_put(KEY, make_row(created_at=20.0, label="new"), 10.0)
        assert backend.get(KEY)["label"] == "new"
        # The timestamp moved on, so the old expectation no longer matches.
        assert not backend.compare_and_put(KEY, make_row(label="stale"), 10.0)
        assert backend.get(KEY)["label"] == "new"

    def test_compare_and_put_on_missing_key_fails(self, backend):
        assert backend.compare_and_put(KEY, make_row(), 10.0) is False
        assert backend.get(KEY) is None

    def test_delete_reports_whether_present(self, backend):
        backend.put(KEY, make_row())
        assert backend.delete(KEY) is True
        assert backend.delete(KEY) is False

    def test_keys_and_count(self, backend):
        backend.put(KEY, make_row())
        backend.put(OTHER, make_row(fingerprint=OTHER))
        assert sorted(backend.keys()) == sorted([KEY, OTHER])
        assert backend.count() == 2

    def test_clear_empties_and_reports(self, backend):
        backend.put(KEY, make_row())
        backend.put(OTHER, make_row(fingerprint=OTHER))
        assert backend.clear() == 2
        assert backend.count() == 0

    def test_oldest_keys_orders_by_created_at(self, backend):
        backend.put(KEY, make_row(created_at=2.0))
        backend.put(OTHER, make_row(fingerprint=OTHER, created_at=1.0))
        assert backend.oldest_keys(1) == [OTHER]
        assert backend.oldest_keys(10) == [OTHER, KEY]

    def test_expired_keys_uses_cutoff(self, backend):
        backend.put(KEY, make_row(created_at=5.0))
        backend.put(OTHER, make_row(fingerprint=OTHER, created_at=50.0))
        assert backend.expired_keys(10.0) == [KEY]
        assert backend.expired_keys(1.0) == []

    def test_rows_streams_everything(self, backend):
        backend.put(KEY, make_row())
        backend.put(OTHER, make_row(fingerprint=OTHER))
        fingerprints = sorted(row["fingerprint"] for row in backend.rows())
        assert fingerprints == sorted([KEY, OTHER])

    def test_checkpoint_is_safe(self, backend):
        backend.put(KEY, make_row())
        backend.checkpoint()
        assert backend.get(KEY) is not None

    def test_concurrent_writers_one_claim_wins(self, backend):
        """N racing put_if_absent calls: exactly one True, row intact."""
        outcomes = []
        barrier = threading.Barrier(8)

        def contend(label):
            barrier.wait()
            outcomes.append((backend.put_if_absent(KEY, make_row(label=label)), label))

        threads = [
            threading.Thread(target=contend, args=(f"writer-{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [label for won, label in outcomes if won]
        assert len(winners) == 1
        assert backend.get(KEY)["label"] == winners[0]

    def test_concurrent_plain_puts_converge(self, backend):
        """Racing unconditional puts: last write wins, store stays consistent."""

        def hammer(label):
            for _ in range(5):
                backend.put(KEY, make_row(label=label))

        threads = [threading.Thread(target=hammer, args=(f"w{i}",)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        row = backend.get(KEY)
        assert row is not None and row["label"].startswith("w")
        assert backend.count() == 1


class TestHTTPBackendSpecifics:
    def test_server_side_ttl_hides_expired_rows(self):
        with KeyspaceServerThread(ttl_seconds=0.2) as server:
            client = HTTPBackend(server.base_url)
            client.put(KEY, make_row(created_at=time.time()))
            assert client.get(KEY) is not None
            client.put(OTHER, make_row(fingerprint=OTHER, created_at=time.time() - 10.0))
            # Aged out relative to the server's TTL: invisible on read.
            assert client.get(OTHER) is None
            client.close()

    def test_per_row_expires_at_enforced_on_read(self):
        with KeyspaceServerThread() as server:
            client = HTTPBackend(server.base_url)
            client.put(KEY, make_row(expires_at=time.time() - 1.0))
            assert client.get(KEY) is None
            client.put(OTHER, make_row(fingerprint=OTHER, expires_at=time.time() + 60.0))
            assert client.get(OTHER) is not None
            client.close()

    def test_max_entries_evicts_oldest_on_write(self):
        with KeyspaceServerThread(max_entries=2) as server:
            client = HTTPBackend(server.base_url)
            old, mid, new = "c" * 64, "d" * 64, "e" * 64
            for key, stamp in ((old, 1.0), (mid, 2.0), (new, 3.0)):
                client.put(key, make_row(fingerprint=key, created_at=stamp))
            assert client.get(old) is None
            assert client.get(mid) is not None and client.get(new) is not None
            client.close()

    def test_expired_claim_is_reclaimable_via_put_if_absent(self):
        """An If-Match: * PUT reaps a dead claim instead of refusing."""
        with KeyspaceServerThread() as server:
            client = HTTPBackend(server.base_url)
            dead_claim = make_row(
                cacheable=0, error_code="in-flight", expires_at=time.time() - 1.0
            )
            client.put(KEY, dead_claim)
            assert client.put_if_absent(KEY, make_row(label="takeover")) is True
            assert client.get(KEY)["label"] == "takeover"
            client.close()

    def test_auth_token_round_trip_and_rejection(self):
        with KeyspaceServerThread(auth_token="sesame") as server:
            trusted = HTTPBackend(server.base_url, token="sesame")
            trusted.put(KEY, make_row())
            assert trusted.get(KEY) is not None
            trusted.close()
            for bad_token in (None, "wrong"):
                intruder = HTTPBackend(server.base_url, token=bad_token)
                with pytest.raises(StoreError):
                    intruder.get(KEY)
                intruder.close()

    def test_future_schema_refused_at_first_contact(self, monkeypatch):
        """A server speaking a newer row schema is refused, like SQLite files."""
        with KeyspaceServerThread() as server:
            original = KeyspaceService.discovery_document

            def newer(self):
                document = original(self)
                document["store"] = dict(document["store"], schema_version=ROW_SCHEMA_VERSION + 1)
                return document

            monkeypatch.setattr(KeyspaceService, "discovery_document", newer)
            client = HTTPBackend(server.base_url)
            with pytest.raises(StoreError, match="schema"):
                client.get(KEY)
            client.close()

    def test_backend_from_url_builds_http_backend(self):
        with KeyspaceServerThread() as server:
            handle = backend_from_url(server.base_url)
            assert isinstance(handle, HTTPBackend)
            assert handle.name == server.base_url
            handle.put(KEY, make_row())
            assert handle.get(KEY)["fingerprint"] == KEY
            handle.close()


class TestBackendFromUrl:
    def test_memory_specs(self):
        for spec in ("memory", "memory:", "memory://"):
            assert isinstance(backend_from_url(spec), MemoryBackend)

    def test_sqlite_specs(self, tmp_path):
        for spec in (f"sqlite:{tmp_path}/a.db", f"sqlite:///{tmp_path}/b.db", f"{tmp_path}/c.db"):
            handle = backend_from_url(spec)
            assert isinstance(handle, SQLiteBackend)
            handle.close()

    def test_sqlite_spec_without_path_is_an_error(self):
        with pytest.raises(StoreError):
            backend_from_url("sqlite:")
