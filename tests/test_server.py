"""Tests for the async HTTP front door (`repro serve`).

The server runs on a dedicated event-loop thread (`ServerThread`) and is
driven over real sockets -- urllib for one-shots, raw sockets for the
connection-layer tests, `ServiceClient` for keep-alive reuse -- so these
tests cover the wire format end to end: the versioned `/v1` surface with
its legacy aliases, store-first serving, in-flight fingerprint dedup,
NDJSON batch progress, keep-alive/pipelining, auth, load-shedding, the
Prometheus exposition, and every documented error path.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    ERROR_CODES,
    ResultStore,
    ServerThread,
    ServiceClient,
    ServiceError,
    VerificationService,
)
from repro.telemetry import (
    chrome_trace,
    counter_regressions,
    parse_exposition,
    validate_exposition,
)
from repro.service.client import jobs_to_wire, post_jobs
from repro.workloads import generate_jobs


def _request(base_url, path, data=None, method=None):
    """(status, decoded JSON body, headers) for one request; never raises."""
    request = urllib.request.Request(
        base_url + path,
        data=data,
        headers={"Content-Type": "application/json"} if data is not None else {},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


@pytest.fixture()
def server():
    with ServerThread(service=VerificationService(store=ResultStore.in_memory())) as handle:
        yield handle


class TestEndpoints:
    def test_healthz(self, server):
        status, payload, _ = _request(server.base_url, "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["api_version"] == "v1"
        assert payload["store"] == "memory"

    def test_single_job_engine_then_store(self, server):
        job = generate_jobs(1, seed=3)[0]
        spec = json.dumps(job.to_spec()).encode()
        status, first, _ = _request(server.base_url, "/v1/jobs", spec)
        assert status == 200
        assert first["served_from"] == "engine"
        assert first["fingerprint"] == job.fingerprint
        assert first["result"]["nonempty"] in (True, False)

        status, second, _ = _request(server.base_url, "/v1/jobs", spec)
        assert status == 200
        assert second["served_from"] == "store"
        assert second["result"]["nonempty"] == first["result"]["nonempty"]
        assert second["result"]["cached"] is True

    def test_job_lookup_by_fingerprint(self, server):
        job = generate_jobs(1, seed=4)[0]
        _request(server.base_url, "/v1/jobs", json.dumps(job.to_spec()).encode())
        status, payload, _ = _request(server.base_url, f"/v1/jobs/{job.fingerprint}")
        assert status == 200
        assert payload["served_from"] == "store"
        status, _, _ = _request(server.base_url, "/v1/jobs/" + "0" * 64)
        assert status == 404

    def test_batch_cold_then_warm(self, server):
        jobs = generate_jobs(5, seed=11)
        cold = post_jobs(server.base_url, jobs)
        assert cold["jobs"] == 5
        assert cold["executed"] == 5 and cold["store_hits"] == 0
        assert all(result["served_from"] == "engine" for result in cold["results"])

        warm = post_jobs(server.base_url, jobs)
        assert warm["executed"] == 0 and warm["store_hits"] == 5
        assert all(result["served_from"] == "store" for result in warm["results"])
        assert [r["nonempty"] for r in cold["results"]] == [
            r["nonempty"] for r in warm["results"]
        ]

    def test_batch_status_and_stats(self, server):
        jobs = generate_jobs(3, seed=12)
        report = post_jobs(server.base_url, jobs)
        status, payload, _ = _request(server.base_url, f"/v1/batch/{report['batch_id']}")
        assert status == 200
        assert payload["completed"] is True
        assert payload["report"]["executed"] == 3

        status, stats, _ = _request(server.base_url, "/v1/stats")
        assert status == 200
        assert stats["executed"] == 3
        assert stats["store_size"] == 3
        # The new observability blocks are always present.
        assert stats["queue"]["depth"] == 0 and stats["queue"]["shed_total"] == 0
        assert stats["connections"]["open"] >= 1
        submit = stats["latency"]["jobs_submit"]
        assert submit["count"] == 1
        assert submit["p50_ms"] <= submit["p95_ms"] <= submit["p99_ms"]

    def test_client_fingerprints_verified_end_to_end(self, server):
        jobs = generate_jobs(2, seed=13)
        report = post_jobs(server.base_url, jobs, include_fingerprints=True)
        assert report["executed"] == 2
        wire = jobs_to_wire(jobs)
        assert all("fingerprint" in spec for spec in wire["jobs"])


class TestConnectionLayer:
    def test_service_client_reuses_one_connection(self, server):
        with ServiceClient(server.base_url) as client:
            client.healthz()
            jobs = generate_jobs(2, seed=41)
            client.submit_batch(jobs)
            client.submit_batch(jobs)
            client.stats()
        # Four requests, one TCP connection (plus the fixture's baseline).
        assert server.service.stats.connections_total == 1

    def test_close_per_request_opens_n_connections(self, server):
        with ServiceClient(server.base_url, keep_alive=False) as client:
            for _ in range(3):
                client.healthz()
        assert server.service.stats.connections_total == 3

    def test_pipelined_requests_on_one_socket(self, server):
        host, port = server.address
        request = b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n"
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(request * 3)  # all three before reading any response
            deadline = time.time() + 10
            data = b""
            while data.count(b"HTTP/1.1 200") < 3 and time.time() < deadline:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert data.count(b"HTTP/1.1 200") == 3
        assert data.count(b"Connection: keep-alive") == 3
        assert server.service.stats.connections_total == 1

    def test_http_1_0_closes_by_default(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GET /v1/healthz HTTP/1.0\r\nHost: t\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert b"HTTP/1.1 200" in data
        assert b"Connection: close" in data

    def test_connection_cap_answers_503(self):
        service = VerificationService(store=ResultStore.in_memory(), max_connections=1)
        with ServerThread(service=service) as server:
            host, port = server.address
            with socket.create_connection((host, port), timeout=10) as first:
                # Occupy the single slot with a real keep-alive request.
                first.sendall(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                while b"\r\n\r\n" not in first.recv(65536):
                    pass
                status, payload, headers = _request(server.base_url, "/v1/healthz")
                assert status == 503
                assert payload["error"]["code"] == "too-many-connections"
                assert headers.get("Retry-After") is not None
            assert service.stats.connections_refused >= 1


class TestLoadShedding:
    def test_shed_everything_mode(self):
        service = VerificationService(store=ResultStore.in_memory(), max_pending=0)
        with ServerThread(service=service) as server:
            spec = json.dumps(generate_jobs(1, seed=43)[0].to_spec()).encode()
            status, payload, headers = _request(server.base_url, "/v1/jobs", spec)
            assert status == 429
            assert payload["error"]["code"] == "overloaded"
            assert payload["error"]["detail"]["queue_limit"] == 0
            assert headers["Retry-After"].isdigit()
            # Reads are never shed; the gate guards work-bearing requests only.
            status, stats, _ = _request(server.base_url, "/v1/stats")
            assert status == 200
            assert stats["queue"]["shed_total"] == 1

    def test_client_retries_until_admitted(self):
        # max_pending=1 with a slow engine: the second concurrent batch is
        # shed at first, and the client's Retry-After backoff gets it
        # through once the first completes.
        service = VerificationService(
            store=ResultStore.in_memory(), max_pending=1, execute_delay=0.3, retry_after=1
        )
        with ServerThread(service=service) as server:
            results = {}

            def submit(tag, seed, delay):
                time.sleep(delay)
                with ServiceClient(server.base_url, retries=5) as client:
                    results[tag] = client.submit_batch(generate_jobs(1, seed=seed))

            threads = [
                threading.Thread(target=submit, args=("a", 51, 0.0)),
                threading.Thread(target=submit, args=("b", 52, 0.1)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert results["a"]["executed"] == 1
            assert results["b"]["executed"] == 1
            assert service.stats.shed >= 1

    def test_shed_without_retries_raises_service_error(self):
        service = VerificationService(store=ResultStore.in_memory(), max_pending=0)
        with ServerThread(service=service) as server:
            with ServiceClient(server.base_url, retries=0) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.submit_batch(generate_jobs(1, seed=44))
            assert excinfo.value.status == 429
            assert excinfo.value.code == "overloaded"


class TestAuth:
    @pytest.fixture()
    def auth_server(self):
        service = VerificationService(store=ResultStore.in_memory(), auth_token="open-sesame")
        with ServerThread(service=service) as handle:
            yield handle

    def test_healthz_stays_open(self, auth_server):
        status, payload, _ = _request(auth_server.base_url, "/v1/healthz")
        assert status == 200
        assert payload["auth"] is True

    def test_missing_token_is_401(self, auth_server):
        status, payload, headers = _request(auth_server.base_url, "/v1/stats")
        assert status == 401
        assert payload["error"]["code"] == "auth-required"
        assert "Bearer" in headers["WWW-Authenticate"]

    def test_wrong_token_is_403(self, auth_server):
        with ServiceClient(auth_server.base_url, auth_token="wrong", retries=0) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.stats()
        assert excinfo.value.status == 403
        assert excinfo.value.code == "auth-invalid"
        assert auth_server.service.stats.auth_rejected == 1

    def test_bearer_and_header_tokens_accepted(self, auth_server):
        with ServiceClient(auth_server.base_url, auth_token="open-sesame") as client:
            report = client.submit_batch(generate_jobs(1, seed=45))
            assert report["executed"] == 1
        request = urllib.request.Request(
            auth_server.base_url + "/v1/stats", headers={"X-Auth-Token": "open-sesame"}
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200


class TestMetrics:
    def test_prometheus_exposition(self, server):
        post_jobs(server.base_url, generate_jobs(2, seed=46))
        request = urllib.request.Request(server.base_url + "/v1/metrics")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")
            text = response.read().decode()
        lines = text.splitlines()
        # Every sample line is preceded by HELP/TYPE metadata for its family.
        families = {
            line.split()[2]: line.split()[3]
            for line in lines
            if line.startswith("# TYPE")
        }
        assert families["repro_jobs_executed_total"] == "counter"
        assert families["repro_queue_depth"] == "gauge"
        assert families["repro_request_latency_seconds"] == "summary"
        assert "repro_jobs_executed_total 2" in text
        assert 'repro_request_latency_seconds{endpoint="jobs_submit",quantile="0.99"}' in text
        assert 'repro_request_latency_seconds_count{endpoint="jobs_submit"} 1' in text
        # No trailing garbage: every non-comment line is `name[{labels}] value`.
        for line in lines:
            if line.startswith("#") or not line:
                continue
            assert len(line.rsplit(" ", 1)) == 2


class TestVersioning:
    def test_legacy_aliases_answer_with_deprecation(self, server):
        for path in ("/healthz", "/stats"):
            status, _, headers = _request(server.base_url, path)
            assert status == 200
            assert headers["Deprecation"] == "true"
            assert headers["Link"] == f'</v1{path}>; rel="successor-version"'

    def test_legacy_jobs_roundtrip(self, server):
        # The old unversioned wire format keeps working verbatim.
        job = generate_jobs(1, seed=47)[0]
        spec = json.dumps(job.to_spec()).encode()
        status, payload, headers = _request(server.base_url, "/jobs", spec)
        assert status == 200
        assert payload["served_from"] == "engine"
        assert headers["Deprecation"] == "true"
        status, payload, _ = _request(server.base_url, f"/jobs/{job.fingerprint}")
        assert status == 200 and payload["served_from"] == "store"

    def test_v1_routes_carry_no_deprecation(self, server):
        _, _, headers = _request(server.base_url, "/v1/healthz")
        assert "Deprecation" not in headers

    def test_unknown_version_is_404_with_hint(self, server):
        status, payload, _ = _request(server.base_url, "/v2/healthz")
        assert status == 404
        assert payload["error"]["code"] == "unknown-version"
        assert "/v1/healthz" in payload["error"]["detail"]


class TestInFlightDedup:
    def test_concurrent_duplicate_batches_share_one_execution(self):
        service = VerificationService(
            store=ResultStore.in_memory(), workers=1, execute_delay=0.4
        )
        with ServerThread(service=service) as server:
            jobs = generate_jobs(4, seed=7)
            responses = {}

            def post(tag, delay):
                time.sleep(delay)
                responses[tag] = post_jobs(server.base_url, jobs)

            threads = [
                threading.Thread(target=post, args=("first", 0.0)),
                threading.Thread(target=post, args=("second", 0.15)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            first, second = responses["first"], responses["second"]
            # The invariant the front door exists for: each unique
            # fingerprint runs the engine at most once, server-wide.
            assert first["executed"] + second["executed"] == 4
            assert second["inflight_joins"] == 4 and second["executed"] == 0
            assert [r["nonempty"] for r in first["results"]] == [
                r["nonempty"] for r in second["results"]
            ]
            assert service.stats.executed == 4
            assert service.stats.inflight_joins == 4

    def test_duplicates_within_one_batch_execute_once(self, server):
        job = generate_jobs(1, seed=21)[0]
        report = post_jobs(server.base_url, [job, job, job])
        assert report["executed"] == 1
        assert report["batch_dedup"] == 2
        served = sorted(result["served_from"] for result in report["results"])
        assert served == ["batch-dedup", "batch-dedup", "engine"]
        verdicts = {result["nonempty"] for result in report["results"]}
        assert len(verdicts) == 1


class TestBatchEvents:
    def test_events_replay_after_completion(self, server):
        jobs = generate_jobs(3, seed=15)
        report = post_jobs(server.base_url, jobs)
        with urllib.request.urlopen(
            f"{server.base_url}/v1/batch/{report['batch_id']}/events", timeout=30
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in response.read().decode().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "batch_accepted"
        assert kinds[-1] == "batch_done"
        assert kinds.count("job_done") == 3
        done = events[-1]
        assert done["executed"] == 3 and done["jobs"] == 3

    def test_events_stream_live_for_async_batch(self):
        service = VerificationService(
            store=ResultStore.in_memory(), workers=1, execute_delay=0.3
        )
        with ServerThread(service=service) as server:
            jobs = generate_jobs(2, seed=16)
            status, accepted, _ = _request(
                server.base_url,
                "/v1/jobs",
                json.dumps({**jobs_to_wire(jobs), "wait": False}).encode(),
            )
            assert status == 202 and accepted["status"] == "accepted"
            assert accepted["events_url"].startswith("/v1/batch/")
            # The stream follows the in-progress batch until batch_done.
            with urllib.request.urlopen(
                server.base_url + accepted["events_url"], timeout=30
            ) as response:
                events = [
                    json.loads(line) for line in response.read().decode().splitlines()
                ]
            assert events[-1]["event"] == "batch_done"
            assert events[-1]["executed"] == 2

            status, payload, _ = _request(server.base_url, accepted["status_url"])
            assert status == 200 and payload["completed"] is True


class TestErrorPaths:
    def test_every_error_code_is_documented(self):
        # The envelope contract: codes asserted across this class must all
        # be documented in ERROR_CODES (and carry their status in the doc).
        for code, doc in ERROR_CODES.items():
            assert doc.split(":")[0].isdigit(), (code, doc)

    def test_malformed_json_body(self, server):
        status, payload, _ = _request(server.base_url, "/v1/jobs", b"{not json")
        assert status == 400
        assert payload["error"]["code"] == "invalid-json"
        assert set(payload["error"]) == {"code", "message", "detail"}

    def test_malformed_spec_shape(self, server):
        status, payload, _ = _request(
            server.base_url, "/v1/jobs", json.dumps({"system": {"bogus": 1}}).encode()
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid-spec"

    def test_unknown_theory_kind(self, server):
        spec = generate_jobs(1, seed=0)[0].to_spec()
        spec["theory"] = {"kind": "no_such_theory"}
        status, payload, _ = _request(server.base_url, "/v1/jobs", json.dumps(spec).encode())
        assert status == 400
        assert payload["error"]["code"] == "invalid-spec"
        assert "no_such_theory" in payload["error"]["message"]

    def test_client_server_fingerprint_mismatch(self, server):
        spec = generate_jobs(1, seed=0)[0].to_spec()
        spec["fingerprint"] = "deadbeef" * 8
        status, payload, _ = _request(server.base_url, "/v1/jobs", json.dumps(spec).encode())
        assert status == 409
        assert payload["error"]["code"] == "fingerprint-mismatch"
        # Nothing was executed or stored for the rejected submission.
        status, stats, _ = _request(server.base_url, "/v1/stats")
        assert stats["executed"] == 0 and stats["store_size"] == 0

    def test_mismatch_inside_batch_rejects_whole_request(self, server):
        jobs = generate_jobs(2, seed=5)
        wire = jobs_to_wire(jobs)
        wire["jobs"][1]["fingerprint"] = "0" * 64
        status, payload, _ = _request(server.base_url, "/v1/jobs", json.dumps(wire).encode())
        assert status == 409
        assert "jobs[1]" in payload["error"]["message"]

    def test_empty_batch_rejected(self, server):
        status, payload, _ = _request(
            server.base_url, "/v1/jobs", json.dumps({"jobs": []}).encode()
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid-spec"

    def test_unknown_paths_and_methods(self, server):
        status, payload, _ = _request(server.base_url, "/v1/nope")
        assert status == 404 and payload["error"]["code"] == "not-found"
        assert "/v1" in payload["error"]["detail"]
        status, payload, _ = _request(server.base_url, "/v1/batch/zzz")
        assert status == 404 and payload["error"]["code"] == "not-found"
        status, payload, _ = _request(
            server.base_url, "/v1/healthz", data=b"", method="POST"
        )
        assert status == 405 and payload["error"]["code"] == "method-not-allowed"

    def test_service_error_surfaces_envelope(self, server):
        with ServiceClient(server.base_url, retries=0) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.lookup("0" * 64)
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not-found"
        assert excinfo.value.payload["error"]["message"]

    def test_store_ttl_expiry_re_executes(self):
        service = VerificationService(store=ResultStore.in_memory(ttl_seconds=0.3))
        with ServerThread(service=service) as server:
            job = generate_jobs(1, seed=31)[0]
            spec = json.dumps(job.to_spec()).encode()
            _, first, _ = _request(server.base_url, "/v1/jobs", spec)
            assert first["served_from"] == "engine"
            _, warm, _ = _request(server.base_url, "/v1/jobs", spec)
            assert warm["served_from"] == "store"
            time.sleep(0.35)
            _, expired, _ = _request(server.base_url, "/v1/jobs", spec)
            assert expired["served_from"] == "engine"
            assert expired["result"]["nonempty"] == first["result"]["nonempty"]
            assert service.stats.executed == 2


class TestParallelWorkers:
    def test_batch_with_spawned_worker_pool_matches_store_round(self, tmp_path):
        # workers=2 exercises the spawn-based pool end to end through HTTP.
        service = VerificationService(store=ResultStore(tmp_path / "served.sqlite"), workers=2)
        with ServerThread(service=service) as server:
            jobs = generate_jobs(4, seed=17)
            cold = post_jobs(server.base_url, jobs)
            warm = post_jobs(server.base_url, jobs)
            assert cold["executed"] == 4 and warm["store_hits"] == 4
            assert [r["nonempty"] for r in cold["results"]] == [
                r["nonempty"] for r in warm["results"]
            ]


class TestObservability:
    """The telemetry surface: search traces, /v1/stats rollups, metrics lint."""

    def test_traced_job_round_trip(self, server):
        job = generate_jobs(1, seed=21)[0]
        spec = dict(job.to_spec())
        spec["trace"] = True
        status, submitted, _ = _request(server.base_url, "/v1/jobs", json.dumps(spec).encode())
        assert status == 200
        assert submitted["served_from"] == "engine"
        assert submitted["result"]["has_trace"] is True

        status, payload, _ = _request(
            server.base_url, f"/v1/jobs/{job.fingerprint}/trace"
        )
        assert status == 200
        assert payload["fingerprint"] == job.fingerprint
        trace = payload["trace"]
        assert trace["unit"] == "seconds" and trace["spans"], trace
        exported = chrome_trace(trace)
        assert exported["traceEvents"][0]["ph"] == "M"
        assert any(event["ph"] == "X" for event in exported["traceEvents"])

    def test_trace_endpoint_404s(self, server):
        # Unknown fingerprint: no verdict at all.
        status, payload, _ = _request(server.base_url, "/v1/jobs/" + "0" * 64 + "/trace")
        assert status == 404
        assert payload["error"]["code"] == "not-found"
        # Known verdict, but the job never opted into tracing.
        job = generate_jobs(1, seed=22)[0]
        _request(server.base_url, "/v1/jobs", json.dumps(job.to_spec()).encode())
        status, payload, _ = _request(
            server.base_url, f"/v1/jobs/{job.fingerprint}/trace"
        )
        assert status == 404
        assert "trace" in payload["error"]["detail"]

    def test_traced_resubmit_of_untraced_verdict_reexecutes(self, server):
        job = generate_jobs(1, seed=23)[0]
        plain = json.dumps(job.to_spec()).encode()
        status, first, _ = _request(server.base_url, "/v1/jobs", plain)
        assert first["served_from"] == "engine" and first["result"]["has_trace"] is False
        # Re-submitting traced must not be short-circuited by the store: the
        # verdict exists but the requested trace does not.
        spec = dict(job.to_spec())
        spec["trace"] = True
        status, traced, _ = _request(server.base_url, "/v1/jobs", json.dumps(spec).encode())
        assert traced["served_from"] == "engine"
        assert traced["result"]["nonempty"] == first["result"]["nonempty"]
        status, payload, _ = _request(
            server.base_url, f"/v1/jobs/{job.fingerprint}/trace"
        )
        assert status == 200 and payload["trace"]["spans"]
        # And now the traced row serves warm, trace intact.
        status, warm, _ = _request(server.base_url, "/v1/jobs", json.dumps(spec).encode())
        assert warm["served_from"] == "store" and warm["result"]["has_trace"] is True

    def test_certified_job_round_trip_and_cli_byte_agreement(self, server):
        from repro import AllDatabasesTheory, EmptinessSolver
        from repro.certify import build_certificate, decode_certificate, render_certificate
        from repro.library import triangle_system
        from repro.relational.csp import GRAPH_SCHEMA
        from repro.service.jobs import VerificationJob

        job = VerificationJob(
            system=triangle_system(),
            theory=AllDatabasesTheory(GRAPH_SCHEMA),
            certificate=True,
        )
        spec = json.dumps(job.to_spec()).encode()
        status, submitted, _ = _request(server.base_url, "/v1/jobs", spec)
        assert status == 200
        assert submitted["served_from"] == "engine"
        assert submitted["result"]["nonempty"] is True
        assert submitted["result"]["has_certificate"] is True

        status, payload, _ = _request(
            server.base_url, f"/v1/jobs/{job.fingerprint}/witness"
        )
        assert status == 200
        assert payload["fingerprint"] == job.fingerprint
        served = render_certificate(decode_certificate(payload["certificate"]))
        # The HTTP-served certificate and a local CLI-style export are the
        # same canonical bytes: verdict determinism end to end.
        local = EmptinessSolver(job.theory).check(job.system)
        assert served == render_certificate(
            build_certificate(job.system, job.theory, local)
        )
        # A certified job's warm rerun is store-served, certificate intact.
        status, warm, _ = _request(server.base_url, "/v1/jobs", spec)
        assert warm["served_from"] == "store"
        assert warm["result"]["has_certificate"] is True

    def test_witness_endpoint_404s(self, server):
        # Unknown fingerprint: no verdict at all.
        status, payload, _ = _request(server.base_url, "/v1/jobs/" + "0" * 64 + "/witness")
        assert status == 404
        assert payload["error"]["code"] == "not-found"
        # Known verdict, but the job never opted into certificates.
        job = generate_jobs(1, seed=22)[0]
        _request(server.base_url, "/v1/jobs", json.dumps(job.to_spec()).encode())
        status, payload, _ = _request(
            server.base_url, f"/v1/jobs/{job.fingerprint}/witness"
        )
        assert status == 404
        assert "certificate" in payload["error"]["detail"]

    def test_certified_resubmit_of_uncertified_verdict_reexecutes(self, server):
        from repro import AllDatabasesTheory
        from repro.library import triangle_system
        from repro.relational.csp import GRAPH_SCHEMA
        from repro.service.jobs import VerificationJob

        job = VerificationJob(
            system=triangle_system(), theory=AllDatabasesTheory(GRAPH_SCHEMA)
        )
        plain = json.dumps(job.to_spec()).encode()
        _, first, _ = _request(server.base_url, "/v1/jobs", plain)
        assert first["served_from"] == "engine"
        assert first["result"]["has_certificate"] is False
        # Re-submitting with certificate=true must not be short-circuited
        # by the store: the verdict exists but the certificate does not.
        spec = dict(job.to_spec())
        spec["certificate"] = True
        _, certified, _ = _request(server.base_url, "/v1/jobs", json.dumps(spec).encode())
        assert certified["served_from"] == "engine"
        assert certified["result"]["nonempty"] == first["result"]["nonempty"]
        assert certified["result"]["has_certificate"] is True
        status, payload, _ = _request(
            server.base_url, f"/v1/jobs/{job.fingerprint}/witness"
        )
        assert status == 200 and payload["certificate"]

    def test_certified_empty_verdict_serves_from_store(self, server):
        from repro import HomTheory, odd_red_cycle_free_template
        from repro.library import odd_red_cycle_system
        from repro.service.jobs import VerificationJob

        # The HOM example is empty: no witness exists, so a later certified
        # submission is satisfied by the cached verdict (nothing to record).
        job = VerificationJob(
            system=odd_red_cycle_system(),
            theory=HomTheory(odd_red_cycle_free_template()),
        )
        _, first, _ = _request(
            server.base_url, "/v1/jobs", json.dumps(job.to_spec()).encode()
        )
        assert first["result"]["nonempty"] is False
        spec = dict(job.to_spec())
        spec["certificate"] = True
        _, certified, _ = _request(server.base_url, "/v1/jobs", json.dumps(spec).encode())
        assert certified["served_from"] == "store"
        assert certified["result"]["has_certificate"] is False

    def test_stats_engine_store_worker_sections(self, server):
        jobs = generate_jobs(3, seed=24)
        post_jobs(server.base_url, jobs)
        post_jobs(server.base_url, jobs)  # warm rerun: store movement, no engine movement
        status, stats, _ = _request(server.base_url, "/v1/stats")
        assert status == 200
        engine = stats["engine"]
        assert engine["jobs"] == 3  # store hits never count as engine work
        assert engine["configurations_explored"] > 0
        assert engine["engine_seconds"] > 0
        assert 0.0 <= engine["cache_hit_rate"] <= 1.0
        store = stats["store"]
        assert store["puts"] == 3 and store["hits"] == 3
        workers = stats["workers"]
        assert workers["configured"] == 1 and workers["executing"] == 0

    def test_live_metrics_lint_clean_and_monotone(self, server):
        jobs = generate_jobs(2, seed=25)
        post_jobs(server.base_url, jobs)
        with ServiceClient(server.base_url) as client:
            before = client.metrics()
            post_jobs(server.base_url, jobs)  # warm
            after = client.metrics()
        assert validate_exposition(before) == []
        assert validate_exposition(after) == []
        assert counter_regressions(before, after) == []
        for family in (
            "repro_engine_jobs_total",
            "repro_engine_cache_hits_total",
            "repro_plan_compilations_total",
            "repro_store_lookup_hits_total",
            "repro_store_puts_total",
            "repro_worker_processes",
            "repro_jobs_executing",
        ):
            assert family in after, f"{family} missing from /v1/metrics"
        hits = parse_exposition(after).samples[("repro_store_hits_total", ())]
        assert hits == 2  # the warm rerun, counted once per job


class TestConnectionFaults:
    """Client/server resilience to broken connections (reliability suite)."""

    def test_client_retries_stale_keepalive_connection(self):
        # A keep-alive connection the server has idle-timed-out must be
        # replaced transparently on the next request, not surfaced as an
        # error to the caller.
        service = VerificationService(store=ResultStore.in_memory(), idle_timeout=0.3)
        with ServerThread(service=service) as server:
            with ServiceClient(server.base_url) as client:
                assert client.healthz()["status"] == "ok"
                time.sleep(0.8)  # server side closes the idle connection
                assert client.healthz()["status"] == "ok"
            # Two TCP connections total: the original and the replacement.
            assert service.stats.connections_total == 2

    def test_mid_body_client_disconnect_leaves_server_healthy(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\n"
                b"Host: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 1000\r\n"
                b"\r\n"
                b'{"jobs": ['  # a fraction of the promised body, then gone
            )
        # The aborted read must not 500 the connection task or leak state:
        # the server keeps answering and its connection gauge returns to 1
        # (the probe's own connection).
        deadline = time.time() + 10
        while server.service._open_connections > 0 and time.time() < deadline:
            time.sleep(0.05)
        status, payload, _ = _request(server.base_url, "/v1/healthz")
        assert status == 200 and payload["status"] == "ok"
