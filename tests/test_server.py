"""Tests for the async HTTP front door (`repro serve`).

The server runs on a dedicated event-loop thread (`ServerThread`) and is
driven over real sockets with urllib, so these tests cover the wire format
end to end: store-first serving, in-flight fingerprint dedup, NDJSON batch
progress, and every documented error path.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ResultStore, ServerThread, VerificationService
from repro.workloads import generate_jobs, jobs_to_wire, post_jobs


def _request(base_url, path, data=None, method=None):
    """(status, decoded JSON body) for one request; never raises HTTPError."""
    request = urllib.request.Request(
        base_url + path,
        data=data,
        headers={"Content-Type": "application/json"} if data is not None else {},
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def server():
    with ServerThread(service=VerificationService(store=ResultStore.in_memory())) as handle:
        yield handle


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _request(server.base_url, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["store"] == "memory"

    def test_single_job_engine_then_store(self, server):
        job = generate_jobs(1, seed=3)[0]
        spec = json.dumps(job.to_spec()).encode()
        status, first = _request(server.base_url, "/jobs", spec)
        assert status == 200
        assert first["served_from"] == "engine"
        assert first["fingerprint"] == job.fingerprint
        assert first["result"]["nonempty"] in (True, False)

        status, second = _request(server.base_url, "/jobs", spec)
        assert status == 200
        assert second["served_from"] == "store"
        assert second["result"]["nonempty"] == first["result"]["nonempty"]
        assert second["result"]["cached"] is True

    def test_job_lookup_by_fingerprint(self, server):
        job = generate_jobs(1, seed=4)[0]
        _request(server.base_url, "/jobs", json.dumps(job.to_spec()).encode())
        status, payload = _request(server.base_url, f"/jobs/{job.fingerprint}")
        assert status == 200
        assert payload["served_from"] == "store"
        status, _ = _request(server.base_url, "/jobs/" + "0" * 64)
        assert status == 404

    def test_batch_cold_then_warm(self, server):
        jobs = generate_jobs(5, seed=11)
        cold = post_jobs(server.base_url, jobs)
        assert cold["jobs"] == 5
        assert cold["executed"] == 5 and cold["store_hits"] == 0
        assert all(result["served_from"] == "engine" for result in cold["results"])

        warm = post_jobs(server.base_url, jobs)
        assert warm["executed"] == 0 and warm["store_hits"] == 5
        assert all(result["served_from"] == "store" for result in warm["results"])
        assert [r["nonempty"] for r in cold["results"]] == [
            r["nonempty"] for r in warm["results"]
        ]

    def test_batch_status_and_stats(self, server):
        jobs = generate_jobs(3, seed=12)
        report = post_jobs(server.base_url, jobs)
        status, payload = _request(server.base_url, f"/batch/{report['batch_id']}")
        assert status == 200
        assert payload["completed"] is True
        assert payload["report"]["executed"] == 3

        status, stats = _request(server.base_url, "/stats")
        assert status == 200
        assert stats["executed"] == 3
        assert stats["store_size"] == 3

    def test_client_fingerprints_verified_end_to_end(self, server):
        jobs = generate_jobs(2, seed=13)
        report = post_jobs(server.base_url, jobs, include_fingerprints=True)
        assert report["executed"] == 2
        wire = jobs_to_wire(jobs)
        assert all("fingerprint" in spec for spec in wire["jobs"])


class TestInFlightDedup:
    def test_concurrent_duplicate_batches_share_one_execution(self):
        service = VerificationService(
            store=ResultStore.in_memory(), workers=1, execute_delay=0.4
        )
        with ServerThread(service=service) as server:
            jobs = generate_jobs(4, seed=7)
            responses = {}

            def post(tag, delay):
                time.sleep(delay)
                responses[tag] = post_jobs(server.base_url, jobs)

            threads = [
                threading.Thread(target=post, args=("first", 0.0)),
                threading.Thread(target=post, args=("second", 0.15)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            first, second = responses["first"], responses["second"]
            # The invariant the front door exists for: each unique
            # fingerprint runs the engine at most once, server-wide.
            assert first["executed"] + second["executed"] == 4
            assert second["inflight_joins"] == 4 and second["executed"] == 0
            assert [r["nonempty"] for r in first["results"]] == [
                r["nonempty"] for r in second["results"]
            ]
            assert service.stats.executed == 4
            assert service.stats.inflight_joins == 4

    def test_duplicates_within_one_batch_execute_once(self, server):
        job = generate_jobs(1, seed=21)[0]
        report = post_jobs(server.base_url, [job, job, job])
        assert report["executed"] == 1
        assert report["batch_dedup"] == 2
        served = sorted(result["served_from"] for result in report["results"])
        assert served == ["batch-dedup", "batch-dedup", "engine"]
        verdicts = {result["nonempty"] for result in report["results"]}
        assert len(verdicts) == 1


class TestBatchEvents:
    def test_events_replay_after_completion(self, server):
        jobs = generate_jobs(3, seed=15)
        report = post_jobs(server.base_url, jobs)
        with urllib.request.urlopen(
            f"{server.base_url}/batch/{report['batch_id']}/events", timeout=30
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in response.read().decode().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "batch_accepted"
        assert kinds[-1] == "batch_done"
        assert kinds.count("job_done") == 3
        done = events[-1]
        assert done["executed"] == 3 and done["jobs"] == 3

    def test_events_stream_live_for_async_batch(self):
        service = VerificationService(
            store=ResultStore.in_memory(), workers=1, execute_delay=0.3
        )
        with ServerThread(service=service) as server:
            jobs = generate_jobs(2, seed=16)
            status, accepted = _request(
                server.base_url,
                "/jobs",
                json.dumps({**jobs_to_wire(jobs), "wait": False}).encode(),
            )
            assert status == 202 and accepted["status"] == "accepted"
            # The stream follows the in-progress batch until batch_done.
            with urllib.request.urlopen(
                server.base_url + accepted["events_url"], timeout=30
            ) as response:
                events = [
                    json.loads(line) for line in response.read().decode().splitlines()
                ]
            assert events[-1]["event"] == "batch_done"
            assert events[-1]["executed"] == 2

            status, payload = _request(server.base_url, accepted["status_url"])
            assert status == 200 and payload["completed"] is True


class TestErrorPaths:
    def test_malformed_json_body(self, server):
        status, payload = _request(server.base_url, "/jobs", b"{not json")
        assert status == 400
        assert payload["error"] == "invalid-json"

    def test_malformed_spec_shape(self, server):
        status, payload = _request(
            server.base_url, "/jobs", json.dumps({"system": {"bogus": 1}}).encode()
        )
        assert status == 400
        assert payload["error"] == "invalid-spec"

    def test_unknown_theory_kind(self, server):
        spec = generate_jobs(1, seed=0)[0].to_spec()
        spec["theory"] = {"kind": "no_such_theory"}
        status, payload = _request(server.base_url, "/jobs", json.dumps(spec).encode())
        assert status == 400
        assert payload["error"] == "invalid-spec"
        assert "no_such_theory" in payload["message"]

    def test_client_server_fingerprint_mismatch(self, server):
        spec = generate_jobs(1, seed=0)[0].to_spec()
        spec["fingerprint"] = "deadbeef" * 8
        status, payload = _request(server.base_url, "/jobs", json.dumps(spec).encode())
        assert status == 409
        assert payload["error"] == "fingerprint-mismatch"
        # Nothing was executed or stored for the rejected submission.
        status, stats = _request(server.base_url, "/stats")
        assert stats["executed"] == 0 and stats["store_size"] == 0

    def test_mismatch_inside_batch_rejects_whole_request(self, server):
        jobs = generate_jobs(2, seed=5)
        wire = jobs_to_wire(jobs)
        wire["jobs"][1]["fingerprint"] = "0" * 64
        status, payload = _request(server.base_url, "/jobs", json.dumps(wire).encode())
        assert status == 409
        assert "jobs[1]" in payload["message"]

    def test_empty_batch_rejected(self, server):
        status, payload = _request(
            server.base_url, "/jobs", json.dumps({"jobs": []}).encode()
        )
        assert status == 400

    def test_unknown_paths_and_methods(self, server):
        assert _request(server.base_url, "/nope")[0] == 404
        assert _request(server.base_url, "/batch/zzz")[0] == 404
        assert _request(server.base_url, "/healthz", data=b"", method="POST")[0] == 405

    def test_store_ttl_expiry_re_executes(self):
        service = VerificationService(store=ResultStore.in_memory(ttl_seconds=0.3))
        with ServerThread(service=service) as server:
            job = generate_jobs(1, seed=31)[0]
            spec = json.dumps(job.to_spec()).encode()
            _, first = _request(server.base_url, "/jobs", spec)
            assert first["served_from"] == "engine"
            _, warm = _request(server.base_url, "/jobs", spec)
            assert warm["served_from"] == "store"
            time.sleep(0.35)
            _, expired = _request(server.base_url, "/jobs", spec)
            assert expired["served_from"] == "engine"
            assert expired["result"]["nonempty"] == first["result"]["nonempty"]
            assert service.stats.executed == 2


class TestParallelWorkers:
    def test_batch_with_worker_pool_matches_store_round(self, tmp_path):
        service = VerificationService(store=ResultStore(tmp_path / "served.sqlite"), workers=2)
        with ServerThread(service=service) as server:
            jobs = generate_jobs(4, seed=17)
            cold = post_jobs(server.base_url, jobs)
            warm = post_jobs(server.base_url, jobs)
            assert cold["executed"] == 4 and warm["store_hits"] == 4
            assert [r["nonempty"] for r in cold["results"]] == [
                r["nonempty"] for r in warm["results"]
            ]
