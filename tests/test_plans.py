"""Compiled transition plans and the incremental candidate protocol.

Covers the plan compiler (selectivity ordering, decisiveness, templates),
the engine's plan-driven fast path against the legacy cache-free path across
all five shipped theories (verdicts, witness validity, and the
``duplicate_keys_pruned + rejected`` accounting), the process-wide plan
cache, and the frontier-size sampling regression fix.
"""

import pytest

from repro.datavalues import NaturalsWithEquality, with_data_values
from repro.fraisse.engine import EmptinessSolver
from repro.fraisse.plans import (
    DeltaContext,
    PlanSet,
    compile_guard,
    compile_plans,
    prime_plans,
)
from repro.library import odd_red_cycle_system, triangle_system
from repro.logic.parser import parse_formula
from repro.logic.threevalued import UNKNOWN
from repro.perf import caches_disabled
from repro.relational import (
    COLORED_GRAPH_SCHEMA,
    GRAPH_SCHEMA,
    AllDatabasesTheory,
    HomTheory,
    clique_template,
)
from repro.systems.dds import DatabaseDrivenSystem
from repro.trees import TreeRunTheory, tree_schema, universal_automaton
from repro.words import NFA, WordRunTheory, word_schema


# -- guard compilation ------------------------------------------------------------


def _graph_guard(text: str):
    return parse_formula(text)


def test_compile_guard_decisive_for_pure_relational_guard():
    guard = _graph_guard("x_old = x_new & E(x_new, y_new)")
    compiled = compile_guard(guard, GRAPH_SCHEMA)
    assert compiled.decisive
    assert compiled.atom_templates == (("E", (("new", "x"), ("new", "y"))),)


def test_compile_guard_not_decisive_for_unknown_symbols():
    guard = _graph_guard("E(x_new, y_new)")
    # Compile against a schema without E: the atom cannot be decided.
    from repro.logic.schema import Schema

    empty_schema = Schema.relational()
    compiled = compile_guard(guard, empty_schema)
    assert not compiled.decisive

    context = DeltaContext({}, {"x": 0, "y": 1}, lambda s, t: False)
    assert compiled.evaluator(context) is UNKNOWN


def test_compiled_guard_evaluates_like_semantics():
    guard = _graph_guard("E(x_old, y_new) & !(x_old = y_new)")
    compiled = compile_guard(guard, GRAPH_SCHEMA)
    facts = {("E", (0, 1))}

    def fact(symbol, elements):
        return (symbol, elements) in facts

    context = DeltaContext({"x": 0, "y": 0}, {"x": 0, "y": 1}, fact)
    assert compiled.evaluator(context) is True
    context.value_new = {"x": 0, "y": 0}
    assert compiled.evaluator(context) is False  # equality atom now violated


def test_selectivity_ordering_rejects_on_equality_before_relation_atom():
    # The relation atom is first in source order; the compiled plan must
    # reject via the (cheaper) equality without consulting the fact oracle.
    guard = _graph_guard("E(x_new, y_new) & !(x_new = x_new)")
    compiled = compile_guard(guard, GRAPH_SCHEMA)
    assert compiled.decisive

    calls = []

    def fact(symbol, elements):
        calls.append((symbol, elements))
        return True

    context = DeltaContext({}, {"x": 0, "y": 1}, fact)
    assert compiled.evaluator(context) is False
    assert calls == []


def test_three_valued_guard_keeps_source_order():
    # With an undecidable atom the guard must NOT be reordered: UNKNOWN
    # short-circuiting has to match the legacy FormulaError semantics.
    from repro.logic.schema import Schema

    schema = Schema.relational(E=2)
    guard = parse_formula("sim(x_new, y_new) & E(x_new, y_new)")
    compiled = compile_guard(guard, schema)
    assert not compiled.decisive
    context = DeltaContext({}, {"x": 0, "y": 1}, lambda s, t: False)
    # The unknown sim atom comes first in source order and stops the And.
    assert compiled.evaluator(context) is UNKNOWN


def test_plan_set_compiles_one_plan_per_transition():
    system = triangle_system()
    theory = AllDatabasesTheory(GRAPH_SCHEMA)
    plans = compile_plans(system, theory)
    assert len(plans) == len(set(system.transitions))
    for plan in plans:
        assert plan.compiled is not None
        assert plan.decisive


def test_prime_plans_counts_compiled_guards():
    system = triangle_system()
    theory = AllDatabasesTheory(GRAPH_SCHEMA)
    assert prime_plans(system, theory) == len(set(system.transitions))
    with caches_disabled():
        assert prime_plans(system, theory) == 0


def test_plan_cache_key_stable_across_equal_theories():
    first = HomTheory(clique_template(2))
    second = HomTheory(clique_template(2))
    other = HomTheory(clique_template(3))
    assert first.plan_cache_key() is not None
    assert first.plan_cache_key() == second.plan_cache_key()
    assert first.plan_cache_key() != other.plan_cache_key()


# -- fast/legacy equivalence across all five theories ------------------------------


def _word_case():
    nfa = NFA.make(
        states=["s0", "s1"], alphabet=["a", "b"],
        transitions=[("s0", "a", "s0"), ("s0", "b", "s1"), ("s1", "a", "s1")],
        initial=["s0"], accepting=["s1"],
    )
    schema = word_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p", "q"], initial="p", accepting="q",
        transitions=[
            ("p", "label_a(x_old) & label_b(x_new) & before(x_old, x_new)", "q")
        ],
    )
    return system, lambda: WordRunTheory(nfa), True


def _tree_case():
    schema = tree_schema(["a", "b"])
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p", "q"], initial="p", accepting="q",
        transitions=[("p", "label_a(x_old) & label_b(x_new) & "
                     "anc(x_old, x_new)", "q")],
    )
    return system, lambda: TreeRunTheory(universal_automaton(["a", "b"])), True


def _data_case():
    values = NaturalsWithEquality()
    schema = GRAPH_SCHEMA.extend(relations={values.relation_name: 2})
    system = DatabaseDrivenSystem.build(
        schema=schema, registers=["x"], states=["p", "q"], initial="p",
        accepting="q",
        transitions=[
            ("p", f"E(x_old, x_new) & !({values.relation_name}(x_old, x_new))", "q")
        ],
    )
    return (
        system,
        lambda: with_data_values(AllDatabasesTheory(GRAPH_SCHEMA), values),
        True,
    )


def _equivalence_cases():
    return [
        pytest.param(
            triangle_system(),
            lambda: AllDatabasesTheory(GRAPH_SCHEMA),
            True,
            id="all_databases",
        ),
        pytest.param(
            triangle_system(),
            lambda: HomTheory(clique_template(2)),
            False,
            id="hom",
        ),
        pytest.param(*_word_case(), id="word"),
        pytest.param(*_tree_case(), id="tree"),
        pytest.param(*_data_case(), id="data"),
        pytest.param(
            odd_red_cycle_system(),
            lambda: AllDatabasesTheory(COLORED_GRAPH_SCHEMA),
            True,
            id="all_databases_colored",
        ),
    ]


@pytest.mark.parametrize("system,theory_builder,expected", _equivalence_cases())
def test_fast_path_matches_legacy_verdicts_and_accounting(
    system, theory_builder, expected
):
    """Plans on vs caches_disabled(): identical verdicts, witnesses and counts.

    The candidate stream is identical on both paths; only *where* rejected
    candidates die differs (compiled pre-materialization rejection vs the
    engine's full-database evaluation), so the duplicate-plus-rejected
    accounting must balance exactly.
    """
    fast = EmptinessSolver(theory_builder()).check(system)
    with caches_disabled():
        legacy = EmptinessSolver(theory_builder()).check(system)

    assert fast.nonempty == legacy.nonempty == expected
    assert fast.exhausted and legacy.exhausted
    if expected:
        # verify_witnesses=True already replayed the run; assert artefacts.
        assert fast.run is not None and fast.run.database is not None
        assert legacy.run is not None and legacy.run.database is not None

    fs, ls = fast.statistics, legacy.statistics
    assert fs.candidates_generated == ls.candidates_generated
    assert fs.configurations_enqueued == ls.configurations_enqueued
    assert fs.configurations_explored == ls.configurations_explored
    assert fs.duplicate_keys_pruned == ls.duplicate_keys_pruned
    # Every candidate is enqueued, a duplicate, or rejected -- and rejected
    # candidates split between the plan (pre-materialization) and the
    # engine's authoritative evaluation on the fast path.
    fast_rejected = fs.plan_rejected_pre_materialization + fs.guard_rejections
    assert fs.duplicate_keys_pruned + fast_rejected == (
        ls.duplicate_keys_pruned + ls.guard_rejections
    )
    # The legacy path never consults plans.
    assert ls.plan_rejected_pre_materialization == 0
    assert ls.plan_compiled_guard_hits == 0


def test_plan_statistics_surface_in_search_statistics():
    system = triangle_system()
    result = EmptinessSolver(HomTheory(clique_template(2))).check(system)
    stats = result.statistics
    payload = stats.as_dict()
    for field in (
        "plan_rejected_pre_materialization",
        "plan_compiled_guard_hits",
        "plan_fallback_evaluations",
        "plan_enumeration_pruned",
        "plans",
    ):
        assert field in payload
    # The register-shuffle candidates of the triangle system are rejected
    # before materialization, and surviving guards are decided compiled.
    assert stats.plan_rejected_pre_materialization > 0
    assert stats.guard_evaluations == 0
    assert payload["plans"], "per-plan breakdown missing"
    for per_plan in payload["plans"].values():
        assert "rejected_pre_materialization" in per_plan
        assert "compiled_guard_hits" in per_plan


def test_unknown_guard_atoms_fall_back_to_authoritative_evaluation():
    system, theory_builder, expected = _data_case()
    result = EmptinessSolver(theory_builder()).check(system)
    assert result.nonempty == expected
    # Data-value atoms cannot be decided on the delta, so the engine must
    # have evaluated at least some guards on the materialized database.
    assert result.statistics.guard_evaluations > 0


def test_successor_configurations_identical_fast_vs_legacy():
    """Direct enumeration callers see the same stream on both paths."""
    system = triangle_system()
    theory_fast = HomTheory(clique_template(2))
    theory_legacy = HomTheory(clique_template(2))
    transition = system.transitions[0]
    configs = list(theory_fast.initial_configurations(system))[:5]
    for config in configs:
        fast = list(
            theory_fast.successor_configurations(system, config, transition)
        )
        with caches_disabled():
            legacy = list(
                theory_legacy.successor_configurations(system, config, transition)
            )
        assert fast == legacy


# -- frontier sampling regression (max_frontier_size) ------------------------------


def test_max_frontier_size_counts_final_enqueues():
    """The frontier peak must include pushes after the last pop.

    The old engine sampled the frontier only at pop time, so a goal found
    right after a burst of enqueues under-reported the peak.  This system
    enqueues many successors from the first explored node and only then
    takes the accepting transition, so the true peak is reached between the
    first pop and the goal.
    """
    system = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA,
        registers=["x", "y"],
        states=["p", "r", "acc"],
        initial="p",
        accepting="acc",
        # The first transition floods the frontier with fresh (state r) keys
        # from the first popped node; the second then reaches the goal from
        # the same node, ending the search before anything else is popped.
        transitions=[
            ("p", "true", "r"),
            ("p", "x_old = x_new & y_old = y_new", "acc"),
        ],
    )
    theory = AllDatabasesTheory(GRAPH_SCHEMA)
    seed_count = sum(1 for _ in theory.initial_configurations(system))
    result = EmptinessSolver(theory).check(system)
    assert result.nonempty
    stats = result.statistics
    # Exactly one node was popped before the goal, and the goal itself is
    # counted as enqueued but never pushed, so the true peak is everything
    # enqueued minus the goal minus the one pop.
    assert stats.configurations_explored == 1
    assert stats.max_frontier_size == stats.configurations_enqueued - 2
    # Regression guard: pop-time sampling alone can only ever have seen the
    # seed frontier.
    assert stats.max_frontier_size > seed_count


def test_max_frontier_size_consistent_between_paths():
    system = triangle_system()
    fast = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check(system)
    with caches_disabled():
        legacy = EmptinessSolver(AllDatabasesTheory(GRAPH_SCHEMA)).check(system)
    assert fast.statistics.max_frontier_size == legacy.statistics.max_frontier_size


# -- plan-driven engine on strategies ---------------------------------------------


@pytest.mark.parametrize("strategy", ["bfs", "dfs", "priority"])
def test_plan_fast_path_strategy_agreement(strategy):
    system = triangle_system()
    fast = EmptinessSolver(HomTheory(clique_template(2)), strategy=strategy).check(
        system
    )
    with caches_disabled():
        legacy = EmptinessSolver(
            HomTheory(clique_template(2)), strategy=strategy
        ).check(system)
    assert fast.nonempty == legacy.nonempty is False


def test_plan_set_handles_foreign_transition():
    system = triangle_system()
    other = DatabaseDrivenSystem.build(
        schema=GRAPH_SCHEMA, registers=["x"], states=["p"], initial="p",
        accepting="p", transitions=[("p", "true", "p")],
    )
    plans = PlanSet(system, AllDatabasesTheory(GRAPH_SCHEMA))
    foreign = other.transitions[0]
    plan = plans.plan_for(foreign)
    assert plan.transition is foreign
