"""Unit tests for schemas (repro.logic.schema)."""

import pytest

from repro.errors import SchemaError
from repro.logic.schema import FunctionSymbol, RelationSymbol, Schema


def test_relational_constructor():
    schema = Schema.relational(E=2, red=1)
    assert schema.relation("E").arity == 2
    assert schema.relation("red").arity == 1
    assert schema.is_relational


def test_functions_declared():
    schema = Schema(relations={"anc": 2}, functions={"cca": 2})
    assert not schema.is_relational
    assert schema.function("cca").arity == 2
    assert schema.has_function("cca")
    assert not schema.has_relation("cca")


def test_symbol_kind_clash_rejected():
    with pytest.raises(SchemaError):
        Schema(relations={"f": 1}, functions={"f": 1})


def test_relation_arity_must_be_positive():
    with pytest.raises(SchemaError):
        RelationSymbol("R", 0)


def test_constant_symbols_allowed():
    assert FunctionSymbol("c", 0).arity == 0


def test_unknown_symbol_lookup():
    schema = Schema.relational(E=2)
    with pytest.raises(SchemaError):
        schema.relation("missing")
    with pytest.raises(SchemaError):
        schema.arity("missing")


def test_extend_is_nondestructive_and_checks_conflicts():
    schema = Schema.relational(E=2)
    bigger = schema.extend(relations={"red": 1})
    assert bigger.has_relation("red")
    assert not schema.has_relation("red")
    with pytest.raises(SchemaError):
        schema.extend(relations={"E": 3})
    with pytest.raises(SchemaError):
        schema.extend(functions={"E": 1})


def test_union_and_subschema():
    graphs = Schema.relational(E=2)
    colored = Schema.relational(red=1)
    union = graphs.union(colored)
    assert graphs.is_subschema_of(union)
    assert colored.is_subschema_of(union)
    assert not union.is_subschema_of(graphs)


def test_restrict_projection():
    schema = Schema.relational(E=2, red=1)
    restricted = schema.restrict(["E"])
    assert restricted.relation_names == ("E",)
    assert not restricted.has_relation("red")


def test_equality_and_hash():
    a = Schema.relational(E=2, red=1)
    b = Schema.relational(red=1, E=2)
    assert a == b
    assert hash(a) == hash(b)
    assert a != Schema.relational(E=2)


def test_contains_and_names():
    schema = Schema(relations={"E": 2}, functions={"cca": 2})
    assert "E" in schema
    assert "cca" in schema
    assert "missing" not in schema
    assert schema.symbol_names == ("E", "cca")


def test_empty_schema():
    schema = Schema.empty()
    assert schema.relation_names == ()
    assert schema.function_names == ()
    assert schema.is_relational
