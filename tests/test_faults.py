"""Unit tests for the fault-injection registry (`repro.faults`).

The destructive hooks (worker crash, worker hang) are exercised end-to-end
by the chaos suite (`test_chaos.py`); here we pin down the registry
mechanics -- rule parsing, matching, consumption, env activation -- that
the chaos behaviour depends on.
"""

import pytest

from repro import faults
from repro.faults import FAULTS_ENV_VAR, FaultInjected, FaultRegistry, parse_rules


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    faults.registry.clear()
    yield
    faults.registry.clear()


class TestParseRules:
    def test_empty_text_parses_to_no_rules(self):
        assert parse_rules("") == []
        assert parse_rules("  ;  ") == []

    def test_single_rule_with_options(self):
        (rule,) = parse_rules("worker.crash:times=2,match=abc,attempt=1")
        assert rule.point == "worker.crash"
        assert rule.times == 2
        assert rule.match == "abc"
        assert rule.attempt == 1

    def test_multiple_rules_semicolon_separated(self):
        rules = parse_rules("worker.crash:times=1;store.put:match=ff")
        assert [rule.point for rule in rules] == ["worker.crash", "store.put"]

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            parse_rules("worker.explode:times=1")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            parse_rules("worker.crash:bogus=1")

    def test_delay_parses_as_float(self):
        (rule,) = parse_rules("worker.hang:delay=1.5")
        assert rule.delay == 1.5


class TestRegistry:
    def test_inactive_by_default(self):
        registry = FaultRegistry()
        assert not registry.active()
        assert registry.check("worker.crash", key="anything") is None

    def test_install_and_consume_times_budget(self):
        registry = FaultRegistry()
        registry.install("store.put", times=2)
        assert registry.check("store.put", key="a") is not None
        assert registry.check("store.put", key="b") is not None
        assert registry.check("store.put", key="c") is None
        assert registry.fired_total() == 2

    def test_match_restricts_to_key_substring(self):
        registry = FaultRegistry()
        registry.install("store.put", match="deadbeef")
        assert registry.check("store.put", key="0000") is None
        assert registry.check("store.put", key="xxdeadbeefxx") is not None

    def test_attempt_matching_fires_only_on_that_attempt(self):
        registry = FaultRegistry()
        registry.install("worker.crash", attempt=1)
        assert registry.check("worker.crash", key="k", attempt=2) is None
        assert registry.check("worker.crash", key="k", attempt=1) is not None
        # attempt= rules have no times budget by default: they fire on every
        # first attempt (the process-independent way to hit respawned workers).
        assert registry.check("worker.crash", key="k2", attempt=1) is not None

    def test_env_rules_activate_and_track_changes(self, monkeypatch):
        registry = FaultRegistry()
        monkeypatch.setenv(FAULTS_ENV_VAR, "store.put:times=1")
        assert registry.active()
        assert registry.check("store.put", key="k") is not None
        monkeypatch.setenv(FAULTS_ENV_VAR, "worker.hang:delay=0.1")
        # A changed env value re-parses: the old rule is gone.
        assert registry.check("store.put", key="k") is None
        assert registry.check("worker.hang", key="k") is not None

    def test_clear_removes_installed_rules(self):
        registry = FaultRegistry()
        registry.install("store.put")
        registry.clear()
        assert registry.check("store.put", key="k") is None


class TestHooks:
    def test_raise_point_raises_fault_injected(self):
        faults.registry.install("store.put", times=1)
        with pytest.raises(FaultInjected):
            faults.raise_point("store.put", key="k")
        # Budget consumed: the next call is a no-op.
        faults.raise_point("store.put", key="k")

    def test_delay_point_sleeps_for_rule_delay(self):
        faults.registry.install("server.delay", times=1, delay=0.01)
        assert faults.delay_point("server.delay", key="k") == 0.01
        assert faults.delay_point("server.delay", key="k") == 0.0

    def test_crash_and_hang_points_are_noops_without_rules(self):
        # Must not kill or wedge the test process.
        faults.crash_point("worker.crash", key="k")
        faults.hang_point("worker.hang", key="k")
