"""Distributed verdict cluster: coordinator sharding, fleet dedup, failover.

The acceptance bar for the distributed tier is *verdict transparency*: a
sharded fleet (coordinator + runners over one shared keyspace) must
produce exactly the verdicts of a single-node serial run on the same
seeded workload -- warm or cold, with a runner down, and with a worker
crash injected mid-batch.  Everything here runs real sockets end to end:
a `repro store serve` keyspace thread, `ServerThread` runners whose
stores point at it, and a `CoordinatorService` front door.
"""

import contextlib
import socket
import threading
import time

import pytest

from repro.faults import FAULTS_ENV_VAR
from repro.service import (
    CoordinatorService,
    KeyspaceServerThread,
    ResultStore,
    RetryPolicy,
    ServerThread,
    ServiceClient,
    VerificationService,
)
from repro.service.runner import BatchRunner
from repro.service.store import CLAIM_ERROR_CODE, DEFAULT_CLAIM_TTL_SECONDS
from repro.workloads import generate_jobs


def serial_verdicts(jobs):
    """Fingerprint -> (nonempty, exhausted) from a plain single-node run."""
    verdicts = {}
    for _, result in BatchRunner(workers=1).execute_indexed(jobs):
        assert result.ok, result.error
        verdicts[result.fingerprint] = (result.nonempty, result.exhausted)
    return verdicts


def report_verdicts(report):
    return {
        entry["fingerprint"]: (entry["nonempty"], entry["exhausted"])
        for entry in report["results"]
    }


def dead_url():
    """A URL that refuses connections (a port that was bound, then closed)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


@contextlib.contextmanager
def fleet(runner_count=2, runner_kwargs=None, extra_runner_urls=(), coordinator_store=True):
    """A keyspace server, ``runner_count`` runners sharing it, one coordinator."""
    with KeyspaceServerThread() as keyspace:
        with contextlib.ExitStack() as stack:
            runners = []
            for _ in range(runner_count):
                runner = ServerThread(
                    service=VerificationService(
                        store=ResultStore.from_url(keyspace.base_url),
                        **(runner_kwargs or {}),
                    )
                )
                stack.enter_context(runner)
                runners.append(runner)
            urls = [runner.base_url for runner in runners] + list(extra_runner_urls)
            coordinator = ServerThread(
                service=CoordinatorService(
                    runners=urls,
                    store=(
                        ResultStore.from_url(keyspace.base_url)
                        if coordinator_store
                        else None
                    ),
                )
            )
            stack.enter_context(coordinator)
            yield keyspace, runners, coordinator


class TestShardedFleet:
    def test_fleet_verdicts_match_serial_and_warm_rerun_is_store_served(self):
        jobs = generate_jobs(10, seed=11)
        expected = serial_verdicts(jobs)
        with fleet() as (keyspace, runners, coordinator):
            with ServiceClient(coordinator.base_url) as client:
                cold = client.submit_batch(jobs)
                assert report_verdicts(cold) == expected
                assert cold["executed"] == len(jobs)
                # Runners did all the execution; the coordinator only forwarded.
                runner_executed = sum(r.service.stats.executed for r in runners)
                assert runner_executed == len(jobs)
                assert coordinator.service.stats.forwarded == len(jobs)
                # Warm rerun: every verdict now comes off the shared keyspace.
                warm = client.submit_batch(jobs)
                assert report_verdicts(warm) == expected
                assert warm["executed"] == 0 and warm["store_hits"] == len(jobs)
            # A warm rerun served from *any* runner node, not just the front door.
            with ServiceClient(runners[0].base_url) as runner_client:
                from_runner = runner_client.submit_batch(jobs)
                assert report_verdicts(from_runner) == expected
                assert from_runner["executed"] == 0

    def test_failover_to_surviving_runner_keeps_verdicts(self):
        jobs = generate_jobs(12, seed=23)
        expected = serial_verdicts(jobs)
        with fleet(runner_count=1, extra_runner_urls=(dead_url(),)) as (
            keyspace,
            runners,
            coordinator,
        ):
            with ServiceClient(coordinator.base_url) as client:
                report = client.submit_batch(jobs)
            assert report_verdicts(report) == expected
            assert not [e for e in report["results"] if e["error"]]
            # Shards preferring the dead runner were rerouted (12 jobs make
            # an empty shard on one of two runners astronomically unlikely).
            assert coordinator.service.stats.runner_failovers >= 1

    def test_all_runners_down_yields_runner_unavailable_errors(self):
        jobs = generate_jobs(3, seed=31)
        coordinator = ServerThread(
            service=CoordinatorService(runners=[dead_url(), dead_url()])
        )
        with coordinator:
            with ServiceClient(coordinator.base_url) as client:
                report = client.submit_batch(jobs)
        assert len(report["results"]) == len(jobs)
        for entry in report["results"]:
            assert entry["error_code"] == "runner-unavailable"

    def test_fleet_survives_injected_worker_crash(self, monkeypatch):
        """A runner worker hard-killed mid-job: retried, verdicts unchanged."""
        jobs = generate_jobs(6, seed=47)
        expected = serial_verdicts(jobs)
        target = jobs[0].fingerprint[:12]
        monkeypatch.setenv(FAULTS_ENV_VAR, f"worker.crash:match={target},attempt=1")
        runner_kwargs = dict(workers=2, retry_policy=RetryPolicy.with_retries(1))
        with fleet(runner_kwargs=runner_kwargs) as (keyspace, runners, coordinator):
            with ServiceClient(coordinator.base_url) as client:
                report = client.submit_batch(jobs)
        assert report_verdicts(report) == expected
        assert not [e for e in report["results"] if e["error"]]
        crashes = sum(r.service._runner.stats.worker_crashes for r in runners)
        assert crashes >= 1


class TestFleetWitness:
    def test_coordinator_served_witness_identical_to_runners(self):
        """The same fingerprint's witness, fetched through the coordinator
        and straight from the executing runner, is byte-identical."""
        from repro import AllDatabasesTheory
        from repro.certify import validate_encoded
        from repro.library import triangle_system
        from repro.relational.csp import GRAPH_SCHEMA
        from repro.service.jobs import VerificationJob

        job = VerificationJob(
            triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA), certificate=True
        )
        with fleet() as (keyspace, runners, coordinator):
            with ServiceClient(coordinator.base_url) as client:
                report = client.submit_batch([job])
                assert report["results"][0]["nonempty"] is True
                # (has_certificate is presentation-only and does not survive
                # the coordinator's wire round trip -- the witness endpoint
                # is the source of truth, like traces.)
                via_coordinator = client.witness(job.fingerprint)
            # Every runner shares the keyspace, so each serves the witness.
            runner_payloads = []
            for runner in runners:
                with ServiceClient(runner.base_url) as runner_client:
                    runner_payloads.append(runner_client.witness(job.fingerprint))
            for payload in runner_payloads:
                assert payload["certificate"] == via_coordinator["certificate"]
            assert validate_encoded(via_coordinator["certificate"])

    def test_storeless_coordinator_forwards_witness_from_runner(self):
        """Without a store of its own, the coordinator relays the executing
        runner's certificate unchanged."""
        from repro import AllDatabasesTheory
        from repro.certify import validate_encoded
        from repro.library import triangle_system
        from repro.relational.csp import GRAPH_SCHEMA
        from repro.service.jobs import VerificationJob

        job = VerificationJob(
            triangle_system(), AllDatabasesTheory(GRAPH_SCHEMA), certificate=True
        )
        with fleet(coordinator_store=False) as (keyspace, runners, coordinator):
            with ServiceClient(coordinator.base_url) as client:
                client.submit_batch([job])
                payload = client.witness(job.fingerprint)
            assert payload["served_from"] == "runner"
            with ServiceClient(runners[0].base_url) as runner_client:
                direct = runner_client.witness(job.fingerprint)
            assert payload["certificate"] == direct["certificate"]
            assert validate_encoded(payload["certificate"])
            assert coordinator.service.stats.certificates_served >= 1


class TestFleetDedup:
    def test_duplicate_batches_to_different_runners_execute_once(self):
        """The ISSUE's headline: same batch to two nodes, one execution each."""
        jobs = generate_jobs(8, seed=5)
        expected = serial_verdicts(jobs)
        with KeyspaceServerThread() as keyspace:
            make = lambda: VerificationService(
                store=ResultStore.from_url(keyspace.base_url), execute_delay=0.05
            )
            with ServerThread(service=make()) as node_a, ServerThread(service=make()) as node_b:
                reports = {}

                def submit(name, url):
                    with ServiceClient(url) as client:
                        reports[name] = client.submit_batch(jobs)

                threads = [
                    threading.Thread(target=submit, args=("a", node_a.base_url)),
                    threading.Thread(target=submit, args=("b", node_b.base_url)),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert report_verdicts(reports["a"]) == expected
                assert report_verdicts(reports["b"]) == expected
                # Fleet-wide execute-once: every fingerprint ran on exactly one
                # node; the other side joined via claim-wait or the store.
                executed = node_a.service.stats.executed + node_b.service.stats.executed
                assert executed == len(jobs)
                joined = sum(
                    reports[name]["cluster_joins"] + reports[name]["store_hits"]
                    for name in ("a", "b")
                )
                assert executed + joined == 2 * len(jobs)

    def test_claim_takeover_after_owner_death(self):
        """A claim whose owner died (expired TTL) is taken over, not waited out."""
        jobs = generate_jobs(1, seed=3)
        with KeyspaceServerThread() as keyspace:
            dead_store = ResultStore.from_url(keyspace.base_url)
            assert dead_store.try_claim(jobs[0], owner="dead-node", ttl_seconds=0.05)
            time.sleep(0.1)
            service = VerificationService(
                store=ResultStore.from_url(keyspace.base_url), cluster_dedup=True
            )
            with ServerThread(service=service) as node:
                with ServiceClient(node.base_url) as client:
                    report = client.submit_batch(jobs)
            assert report["executed"] == 1
            assert not [e for e in report["results"] if e["error"]]
            dead_store.close()

    def test_store_claim_primitives_over_http(self):
        jobs = generate_jobs(2, seed=9)
        job = jobs[0]
        with KeyspaceServerThread() as keyspace:
            mine = ResultStore.from_url(keyspace.base_url)
            theirs = ResultStore.from_url(keyspace.base_url)
            assert mine.is_shared and theirs.is_shared
            assert mine.try_claim(job, owner="me") is True
            assert theirs.try_claim(job, owner="them") is False
            # The claim row is invisible to plain verdict reads.
            assert theirs.get(job.fingerprint) is None
            mine.release_claim(job.fingerprint, owner="me")
            assert theirs.try_claim(job, owner="them") is True
            assert CLAIM_ERROR_CODE == "in-flight"
            assert DEFAULT_CLAIM_TTL_SECONDS > 0
            mine.close()
            theirs.close()


class TestFleetObservability:
    def test_discovery_documents_across_roles(self):
        with fleet() as (keyspace, runners, coordinator):
            with ServiceClient(coordinator.base_url) as client:
                document = client.discovery()
            assert document["role"] == "coordinator"
            assert document["store"]["shared"] is True
            fleet_info = document["fleet"]
            assert fleet_info["sharding"] == "rendezvous-sha256"
            assert {entry["url"] for entry in fleet_info["runners"]} == {
                runner.base_url for runner in runners
            }
            assert "runner-unavailable" in document["error_codes"]
            with ServiceClient(runners[0].base_url) as client:
                runner_doc = client.discovery()
            assert runner_doc["role"] == "single"  # role label is CLI-assigned
            assert runner_doc["store"]["backend"] == keyspace.base_url
            # The keyspace server speaks the same discovery shape.
            with ServiceClient(keyspace.base_url) as client:
                store_doc = client.discovery()
            assert store_doc["role"] == "store"
            assert store_doc["store"]["schema_version"] == runner_doc["store"]["schema_version"]

    def test_stats_and_metrics_aggregate_the_fleet(self):
        jobs = generate_jobs(6, seed=17)
        with fleet() as (keyspace, runners, coordinator):
            with ServiceClient(coordinator.base_url) as client:
                client.submit_batch(jobs)
                stats = client.stats()
                assert stats["role"] == "coordinator"
                assert stats["forwarded"] == len(jobs)
                assert stats["fleet"]["reachable"] == 2
                assert stats["fleet"]["aggregate"]["executed"] == len(jobs)
                assert len(stats["fleet"]["runners"]) == 2
                exposition = client.metrics()
            assert exposition.count('repro_fleet_runner_up{runner="') == 2
            assert "repro_fleet_jobs_executed_total" in exposition
            assert "repro_jobs_forwarded_total 6" in exposition

    def test_metrics_mark_dead_runner_down(self):
        with fleet(runner_count=1, extra_runner_urls=(dead_url(),)) as (
            keyspace,
            runners,
            coordinator,
        ):
            with ServiceClient(coordinator.base_url) as client:
                exposition = client.metrics()
            up_lines = [
                line
                for line in exposition.splitlines()
                if line.startswith("repro_fleet_runner_up{")
            ]
            assert sorted(line.rsplit(" ", 1)[1] for line in up_lines) == ["0", "1"]

    def test_coordinator_requires_a_runner(self):
        with pytest.raises(ValueError):
            CoordinatorService(runners=[])
